package dbt

import (
	"fmt"

	"dynocache/internal/isa"
)

// tracedBlock is one basic block recorded during superblock formation,
// together with the successor the program actually took.
type tracedBlock struct {
	bb   *basicBlock
	next uint32 // guest PC control went to after this block
}

// stopReason explains why superblock formation ended.
type stopReason uint8

const (
	stopLoopToHead stopReason = iota // execution returned to the trace head
	stopContinue                     // trace ends with a direct continuation
	stopIndirect                     // trace ends in an indirect jump
	stopHalt                         // the program halted
)

// formTrace records the superblock starting at headPC, following the path
// the program takes right now — the NET-style "next executing tail" scheme
// DynamoRIO uses. The head block must already have been executed (its
// actual successor is the current PC); formation interprets further blocks
// as it records them.
func (d *DBT) formTrace(headPC uint32) (blocks []tracedBlock, reason stopReason, cont uint32, err error) {
	headBB, ok := d.bbCache[headPC]
	if !ok {
		return nil, 0, 0, fmt.Errorf("dbt: forming trace for undecoded block %#x", headPC)
	}
	blocks = []tracedBlock{{bb: headBB, next: d.m.PC}}
	inTrace := map[uint32]bool{headPC: true}
	for {
		last := blocks[len(blocks)-1]
		if d.m.Halted {
			return blocks, stopHalt, 0, nil
		}
		if isa.IsIndirect(last.bb.terminator().Op) {
			return blocks, stopIndirect, 0, nil
		}
		next := last.next
		switch {
		case next == headPC:
			return blocks, stopLoopToHead, headPC, nil
		case len(blocks) >= d.cfg.MaxTraceBlocks:
			return blocks, stopContinue, next, nil
		case inTrace[next]:
			// Internal loop not targeting the head: end the trace; the
			// target will become hot and get its own superblock, at which
			// point this exit chains to it.
			return blocks, stopContinue, next, nil
		}
		if _, cached := d.hash[next]; cached {
			// Already translated: stop and let the exit chain to it.
			return blocks, stopContinue, next, nil
		}
		bb, err := d.executeBB(next)
		if err != nil {
			return nil, 0, 0, err
		}
		blocks = append(blocks, tracedBlock{bb: bb, next: d.m.PC})
		inTrace[next] = true
	}
}
