package dbt

import (
	"strings"
	"testing"

	"dynocache/internal/isa"
)

// dbtFor assembles src at address 0 and returns a DBT ready to run it.
func dbtFor(t *testing.T, src string, mutate func(*Config)) *DBT {
	t.Helper()
	code, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HotThreshold = 2 // make formation immediate-ish for tiny tests
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(code, 0, 0); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTraceStopsAtMaxBlocks(t *testing.T) {
	// A long chain of tiny blocks inside a hot loop: formation must stop
	// at MaxTraceBlocks and still execute correctly.
	var b strings.Builder
	b.WriteString("addi r1, r0, 50\nouter:\n")
	for i := 0; i < 12; i++ {
		// Each beq r0, r1 is never taken (r1 != 0 while looping) but ends
		// a basic block.
		b.WriteString("addi r2, r2, 1\nbeq r0, r1, done\n")
	}
	b.WriteString("addi r1, r1, -1\nbne r1, r0, outer\ndone: halt\n")
	d := dbtFor(t, b.String(), func(c *Config) { c.MaxTraceBlocks = 4 })
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := d.Machine().Regs[2]; got != 50*12 {
		t.Fatalf("r2 = %d, want 600", got)
	}
	if d.Stats().SuperblocksFormed < 2 {
		t.Fatalf("capped traces should split into several superblocks, got %d",
			d.Stats().SuperblocksFormed)
	}
}

func TestTraceLoopClosesToHead(t *testing.T) {
	d := dbtFor(t, `
        addi r1, r0, 500
loop:   addi r2, r2, 1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`, nil)
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Machine().Regs[2] != 500 {
		t.Fatalf("r2 = %d, want 500", d.Machine().Regs[2])
	}
	// The loop superblock self-links (Figure 13's self-loop case).
	intra, _ := d.Cache().LinkCensus()
	if intra == 0 {
		t.Fatal("loop superblock should carry an intra-unit self-link")
	}
}

func TestTraceStopsAtExistingFragment(t *testing.T) {
	// Two hot regions; the second's trace must stop where the first's
	// superblock begins and chain to it rather than duplicating it.
	d := dbtFor(t, `
        addi r1, r0, 300
outer:  addi r2, r2, 1
inner:  addi r3, r3, 1
        addi r1, r1, -1
        bne  r1, r0, outer
        halt
`, nil)
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Machine().Regs[2] != 300 || d.Machine().Regs[3] != 300 {
		t.Fatalf("r2/r3 = %d/%d, want 300/300", d.Machine().Regs[2], d.Machine().Regs[3])
	}
	if d.Stats().StubsPatched == 0 {
		t.Fatal("expected chaining between superblocks")
	}
}

func TestIndirectExitEndsTrace(t *testing.T) {
	d := dbtFor(t, `
        addi r4, r0, 200
main:   jal  f
        addi r4, r4, -1
        bne  r4, r0, main
        halt
f:      addi r5, r5, 2
        jr   r15
`, nil)
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Machine().Regs[5] != 400 {
		t.Fatalf("r5 = %d, want 400", d.Machine().Regs[5])
	}
	if d.Stats().IndirectTraps == 0 {
		t.Fatal("returns should exit through indirect stubs")
	}
}

func TestChainedExecutionMatchesInterpretedCounts(t *testing.T) {
	// The same program with threshold so high nothing translates: final
	// state must agree with the default configuration's.
	src := `
        addi r1, r0, 400
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`
	cold := dbtFor(t, src, func(c *Config) { c.HotThreshold = 1 << 30; c.EnableBBCache = false })
	if err := cold.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	hot := dbtFor(t, src, nil)
	if err := hot.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if cold.Machine().Regs[2] != hot.Machine().Regs[2] {
		t.Fatalf("r2 differs: cold %d hot %d", cold.Machine().Regs[2], hot.Machine().Regs[2])
	}
	if cold.Stats().SuperblocksFormed != 0 || hot.Stats().SuperblocksFormed == 0 {
		t.Fatal("threshold control failed")
	}
}
