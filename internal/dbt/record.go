package dbt

import (
	"fmt"
	"sort"

	"dynocache/internal/core"
	"dynocache/internal/trace"
)

// Trace recording: the paper "used the verbose output from DynamoRIO to
// drive the code cache simulator ... we were able to save and reuse the
// DynamoRIO logs to allow for repeatability" (§4.1). This file is that
// verbose output for our DBT: while running, the translator logs every
// superblock lookup, every formation (size), and every chaining link; the
// log converts into a trace.Trace that package sim replays exactly like a
// synthesized workload.
//
// Identity in the log is the superblock's head PC (stable across eviction
// and regeneration), mapped to dense trace IDs in first-formation order.

// traceRecorder accumulates the replayable log.
type traceRecorder struct {
	idOf   map[uint32]core.SuperblockID // head PC -> dense trace ID
	pcs    []uint32                     // dense ID -> head PC
	sizes  []int                        // first-formation size per trace ID
	links  []map[core.SuperblockID]struct{}
	access []core.SuperblockID
}

func newTraceRecorder() *traceRecorder {
	return &traceRecorder{idOf: make(map[uint32]core.SuperblockID)}
}

// define registers a (re)formation of the superblock headed at pc.
func (r *traceRecorder) define(pc uint32, size int) core.SuperblockID {
	if id, ok := r.idOf[pc]; ok {
		return id // regeneration: keep the first-formation size
	}
	id := core.SuperblockID(len(r.pcs))
	r.idOf[pc] = id
	r.pcs = append(r.pcs, pc)
	r.sizes = append(r.sizes, size)
	r.links = append(r.links, make(map[core.SuperblockID]struct{}))
	return id
}

// link records a chaining link between two recorded head PCs.
func (r *traceRecorder) link(fromPC, toPC uint32) {
	from, ok1 := r.idOf[fromPC]
	to, ok2 := r.idOf[toPC]
	if ok1 && ok2 {
		r.links[from][to] = struct{}{}
	}
}

// touch records one code cache lookup that resolved to the superblock
// headed at pc.
func (r *traceRecorder) touch(pc uint32) {
	if id, ok := r.idOf[pc]; ok {
		r.access = append(r.access, id)
	}
}

// build converts the log into a validated trace.
func (r *traceRecorder) build(name string) (*trace.Trace, error) {
	tr := trace.New(name)
	for i, pc := range r.pcs {
		links := make([]core.SuperblockID, 0, len(r.links[i]))
		for to := range r.links[i] {
			links = append(links, to)
		}
		sort.Slice(links, func(a, b int) bool { return links[a] < links[b] })
		if err := tr.Define(core.Superblock{
			ID:    core.SuperblockID(i),
			SrcPC: uint64(pc),
			Size:  r.sizes[i],
			Links: links,
		}); err != nil {
			return nil, err
		}
	}
	for _, id := range r.access {
		if err := tr.Touch(id); err != nil {
			return nil, err
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("dbt: recorded trace invalid: %w", err)
	}
	return tr, nil
}

// EnableTraceRecording turns on the verbose log. Call before Run.
func (d *DBT) EnableTraceRecording() {
	if d.recorder == nil {
		d.recorder = newTraceRecorder()
	}
}

// RecordedTrace converts the log collected so far into a replayable trace
// named after the recording. It errors if recording was never enabled or
// if no superblock was ever formed.
func (d *DBT) RecordedTrace(name string) (*trace.Trace, error) {
	if d.recorder == nil {
		return nil, fmt.Errorf("dbt: trace recording was not enabled")
	}
	if len(d.recorder.pcs) == 0 {
		return nil, fmt.Errorf("dbt: no superblocks were formed; nothing to record")
	}
	return d.recorder.build(name)
}
