package dbt

import (
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/program"
	"dynocache/internal/sim"
)

func TestRecordedTraceFromDBT(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.EnableTraceRecording()
	if err := d.Load(code, program.CodeBase, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	tr, err := d.RecordedTrace("dbt-seed19")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The log names exactly the superblocks formed (regenerations collapse
	// onto their head PC).
	if uint64(tr.NumBlocks()) > d.Stats().SuperblocksFormed {
		t.Fatalf("recorded %d blocks but only %d formations", tr.NumBlocks(), d.Stats().SuperblocksFormed)
	}
	if tr.NumBlocks() == 0 || len(tr.Accesses) == 0 {
		t.Fatal("empty recording")
	}
	// Every recorded lookup resolves; accesses >= formations.
	if len(tr.Accesses) < tr.NumBlocks() {
		t.Fatalf("accesses %d < blocks %d", len(tr.Accesses), tr.NumBlocks())
	}
	// Chained loops produce self-links in the log (Figure 13's self-loop).
	if tr.SelfLinkFraction() == 0 {
		t.Fatal("no self-links recorded; loop superblocks should produce them")
	}

	// The recorded log replays through the simulator like any synthesized
	// workload — the paper's DynamoRIO-log-drives-simulator pipeline.
	res, err := sim.Run(tr, core.Policy{Kind: core.PolicyUnits, Units: 8}, 2, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Accesses != uint64(len(tr.Accesses)) {
		t.Fatal("replay did not consume the recording")
	}
	if res.Stats.Misses == 0 || res.Stats.Hits == 0 {
		t.Fatalf("degenerate replay: %+v", res.Stats)
	}
}

func TestRecordedTraceErrors(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RecordedTrace("x"); err == nil {
		t.Error("recording not enabled should fail")
	}
	d.EnableTraceRecording()
	d.EnableTraceRecording() // idempotent
	if _, err := d.RecordedTrace("x"); err == nil {
		t.Error("empty recording should fail")
	}
}
