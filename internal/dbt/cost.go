package dbt

import (
	"dynocache/internal/overhead"
)

// CostModel prices the DBT's management work in guest-equivalent
// instructions. Guest instructions execute for real; management work
// (dispatch, translation, eviction, protection changes) happens at the
// host level, so its cost is modelled, using the paper's measurements
// where it published them.
type CostModel struct {
	// InterpFactor is the per-instruction slowdown of interpretation
	// relative to native execution (dynamic optimizers interpret cold
	// code; a decode-and-dispatch software interpreter runs two orders of magnitude slower than native code).
	InterpFactor float64
	// DispatchCost is charged per dispatcher entry (hash lookup, context
	// save/restore).
	DispatchCost float64
	// ProtectionCost is charged per cache exit/entry pair through the
	// dispatcher: Table 2's analysis attributes the chaining-disabled
	// catastrophe to "the memory protection changes (and associated
	// system calls) that the DynamoRIO system does in order to protect
	// the translation manager from the user code".
	ProtectionCost float64
	// IBLCost is charged per indirect-branch resolution. Real systems
	// resolve indirect targets through an in-cache lookup routine without
	// crossing the protection boundary, so indirect exits are far cheaper
	// than unlinked direct exits.
	IBLCost float64
	// BBTranslateFactor scales Equation 3 for basic-block fragments:
	// building a single block is cheaper than forming and optimizing a
	// superblock.
	BBTranslateFactor float64
	// Translation, eviction, and unlinking costs follow Equations 3, 2,
	// and 4 respectively via the overhead model.
	Overhead overhead.Model
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		InterpFactor:      150,
		DispatchCost:      60,
		ProtectionCost:    650, // mprotect-class system call pair
		IBLCost:           40,
		BBTranslateFactor: 0.4,
		Overhead:          overhead.Paper(),
	}
}

// ModeledInstructions estimates the total instruction count of a run:
// guest work executed in the cache, interpreted work at its slowdown
// factor, and every management activity at its modelled price.
func (d *DBT) ModeledInstructions() float64 {
	s := d.stats
	cs := d.cache.Stats()
	cost := d.cfg.Costs
	total := float64(s.CacheInsts)
	total += float64(s.InterpretedInsts) * cost.InterpFactor
	// Cache entries that follow an indirect exit model the in-cache
	// indirect-branch lookup; all other entries cross the protection
	// boundary through the dispatcher. Interpreted blocks also dispatch
	// (but stay on the manager side of the boundary).
	directEntries := s.CacheEntries
	if s.IndirectTraps < directEntries {
		directEntries -= s.IndirectTraps
	} else {
		directEntries = 0
	}
	total += float64(directEntries) * (cost.DispatchCost + cost.ProtectionCost)
	total += float64(s.IndirectTraps) * cost.IBLCost
	total += float64(s.BBExecutions) * cost.DispatchCost
	// Translation (Equation 3), eviction (Equation 2), unlinking (Eq. 4).
	total += cost.Overhead.MissCost(cs.InsertedBytes, cs.InsertedBlocks)
	total += cost.Overhead.EvictionCost(cs.BytesEvicted, cs.EvictionInvocations)
	total += cost.Overhead.UnlinkCost(cs.InterUnitLinksRemoved, cs.UnlinkEvents)
	// The basic-block cache's own management, at its cheaper translation
	// rate.
	if bb := d.bbFrag; bb != nil {
		bs := bb.Stats()
		total += cost.BBTranslateFactor * cost.Overhead.MissCost(bs.InsertedBytes, bs.InsertedBlocks)
		total += cost.Overhead.EvictionCost(bs.BytesEvicted, bs.EvictionInvocations)
		total += cost.Overhead.UnlinkCost(bs.InterUnitLinksRemoved, bs.UnlinkEvents)
	}
	return total
}

// ModeledSeconds converts ModeledInstructions to wall-clock time using the
// overhead model's CPI and clock.
func (d *DBT) ModeledSeconds() float64 {
	return d.cfg.Costs.Overhead.Seconds(d.ModeledInstructions())
}
