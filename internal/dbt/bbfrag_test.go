package dbt

import (
	"testing"

	"dynocache/internal/isa"
	"dynocache/internal/program"
)

func TestTranslateBBForms(t *testing.T) {
	cases := []struct {
		name     string
		insts    []isa.Inst
		tail     bool
		indirect bool
		sides    int
	}{
		{"jmp", []isa.Inst{{Op: isa.OpAddi, Rd: 1, Imm: 1}, {Op: isa.OpJmp, Imm: 4}}, true, false, 0},
		{"branch", []isa.Inst{{Op: isa.OpBeq, Rd: 1, Rs1: 2, Imm: 4}}, true, false, 1},
		{"jal", []isa.Inst{{Op: isa.OpJal, Imm: 4}}, true, false, 0},
		{"jr", []isa.Inst{{Op: isa.OpJr, Rs1: 15}}, true, true, 0},
		{"jalr", []isa.Inst{{Op: isa.OpJalr, Rs1: 3}}, true, true, 0},
		{"halt", []isa.Inst{{Op: isa.OpHalt}}, false, false, 0},
	}
	for _, c := range cases {
		bb := &basicBlock{pc: 0x100, insts: c.insts}
		tr, err := translateBB(bb)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if (tr.tail != nil) != c.tail {
			t.Errorf("%s: tail presence = %v, want %v", c.name, tr.tail != nil, c.tail)
		}
		if c.tail && tr.tail.indirect != c.indirect {
			t.Errorf("%s: indirect = %v, want %v", c.name, tr.tail.indirect, c.indirect)
		}
		if len(tr.sides) != c.sides {
			t.Errorf("%s: sides = %d, want %d", c.name, len(tr.sides), c.sides)
		}
	}
}

func TestTranslateBBDegenerateBranch(t *testing.T) {
	// A branch to its own fall-through needs no side exit.
	bb := &basicBlock{pc: 0, insts: []isa.Inst{{Op: isa.OpBeq, Rd: 1, Rs1: 2, Imm: 0}}}
	tr, err := translateBB(bb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.sides) != 0 || tr.tail == nil {
		t.Fatalf("degenerate branch mishandled: %+v", tr)
	}
}

func TestBBFragmentIDSpace(t *testing.T) {
	d := &DBT{}
	sb := d.allocID(kindSuperblock)
	bb := d.allocID(kindBB)
	pad := d.allocID(kindPad)
	if sb != 0 || bb != 1 || pad != 2 {
		t.Errorf("IDs not allocated densely: %d, %d, %d", sb, bb, pad)
	}
	if d.isBB(sb) || d.isBB(pad) {
		t.Error("superblock/pad IDs misclassified as bb fragments")
	}
	if !d.isBB(bb) {
		t.Error("bb fragment ID not recognized")
	}
	if d.isBB(99) {
		t.Error("unallocated ID classified as bb fragment")
	}
}

func TestBBCacheExecutesColdCode(t *testing.T) {
	// With a sky-high threshold no superblocks ever form; all execution
	// beyond the first contact of each block comes from the bb cache.
	p, err := program.Generate(program.DefaultGenConfig(61))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	ref := runRef(t, p, budget)
	cfg := DefaultConfig()
	cfg.HotThreshold = 1 << 30
	d := runDBT(t, p, cfg, budget)
	assertEquivalent(t, ref, d, "bb-only")
	s := d.Stats()
	if s.SuperblocksFormed != 0 {
		t.Fatalf("no superblocks expected, got %d", s.SuperblocksFormed)
	}
	if s.BBFragsTranslated == 0 || s.CacheInsts == 0 {
		t.Fatalf("bb cache unused: %+v", s)
	}
	// The interpreter only runs during block recording; with no trace
	// formation it should never execute guest code at all.
	if s.InterpretedInsts != 0 {
		t.Fatalf("interpreter ran %d insts despite the bb cache", s.InterpretedInsts)
	}
}

func TestBBCacheForwardChainingOnly(t *testing.T) {
	// Straight-line blocks chain forward (bb->bb links exist), while
	// backward targets keep trapping so they can be counted.
	p, err := program.Generate(program.DefaultGenConfig(67))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HotThreshold = 1 << 30 // keep everything in the bb cache
	d := runDBT(t, p, cfg, 50_000_000)
	if d.Stats().BBToBBLinks == 0 {
		t.Fatal("no bb->bb chaining happened")
	}
	// Every patched bb->bb link must point forward.
	for idx := range d.stubs {
		st := d.stubs[idx]
		if st.live && st.patched && d.isBB(st.owner) && d.isBB(st.linkTo) {
			if st.target <= d.pcOf[st.owner] {
				t.Fatalf("backward bb link patched: %#x -> %#x", d.pcOf[st.owner], st.target)
			}
		}
	}
}

func TestBBCacheDisabledMatchesInterpreterPath(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	ref := runRef(t, p, budget)
	cfg := DefaultConfig()
	cfg.EnableBBCache = false
	d := runDBT(t, p, cfg, budget)
	assertEquivalent(t, ref, d, "no-bbcache")
	if d.Stats().BBFragsTranslated != 0 {
		t.Fatal("bb cache ran while disabled")
	}
	if d.BBCache() != nil {
		t.Fatal("BBCache() should be nil when disabled")
	}
}

func TestBBCacheSpeedsUpColdExecution(t *testing.T) {
	// The architectural point of the bb cache: cold code stops paying the
	// interpretation factor. Modelled time with the bb cache must beat
	// the interpreter-only configuration on a workload with a big cold
	// footprint.
	gen := program.DefaultGenConfig(73)
	gen.PhaseIters = 5 // everything stays colder than the threshold
	p, err := program.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	with := DefaultConfig()
	dWith := runDBT(t, p, with, budget)
	without := DefaultConfig()
	without.EnableBBCache = false
	dWithout := runDBT(t, p, without, budget)
	if dWith.ModeledSeconds() >= dWithout.ModeledSeconds() {
		t.Fatalf("bb cache should pay off on cold code: with=%g without=%g",
			dWith.ModeledSeconds(), dWithout.ModeledSeconds())
	}
}

func TestConfigValidateBBCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBCacheCapacity = 100
	if err := cfg.Validate(); err == nil {
		t.Error("tiny bb cache should be rejected")
	}
	cfg = DefaultConfig()
	cfg.BBCacheCapacity = program.MemSize
	if _, err := New(cfg); err == nil {
		t.Error("oversized bb region should be rejected")
	}
}
