package dbt

import (
	"testing"

	"dynocache/internal/interp"
	"dynocache/internal/isa"
	"dynocache/internal/program"
)

// transOf builds a translation from raw body instructions (no stubs).
func transOf(body ...isa.Inst) *translation {
	return &translation{body: body}
}

func TestConstantFolding(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 10},
		isa.Inst{Op: isa.OpAddi, Rd: 2, Imm: 20},
		isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		isa.Inst{Op: isa.OpMul, Rd: 4, Rs1: 3, Rs2: 2},
	)
	st := optimize(tr)
	if st.ConstFolded != 2 {
		t.Fatalf("ConstFolded = %d, want 2", st.ConstFolded)
	}
	if tr.body[2].Op != isa.OpAddi || tr.body[2].Imm != 30 {
		t.Fatalf("add not folded: %v", tr.body[2])
	}
	if tr.body[3].Op != isa.OpAddi || tr.body[3].Imm != 600 {
		t.Fatalf("mul not folded: %v", tr.body[3])
	}
}

func TestLuiAddiPairCollapses(t *testing.T) {
	// materializeLink for a small guest address: lui r15, 0 + addi folds,
	// and DCE removes the dead lui.
	tr := transOf(
		isa.Inst{Op: isa.OpLui, Rd: 15, Imm: 0},
		isa.Inst{Op: isa.OpAddi, Rd: 15, Rs1: 15, Imm: 0x54},
		isa.Inst{Op: isa.OpSw, Rd: 15, Rs1: 8, Imm: 4}, // keep r15 alive
	)
	st := optimize(tr)
	if st.ConstFolded != 1 {
		t.Fatalf("ConstFolded = %d, want 1", st.ConstFolded)
	}
	if st.DeadRemoved != 1 {
		t.Fatalf("DeadRemoved = %d, want 1 (the lui)", st.DeadRemoved)
	}
	if len(tr.body) != 2 {
		t.Fatalf("body = %v", tr.body)
	}
	if tr.body[0].Op != isa.OpAddi || tr.body[0].Rs1 != isa.RZero || tr.body[0].Imm != 0x54 {
		t.Fatalf("collapsed materialization wrong: %v", tr.body[0])
	}
}

func TestFoldingSkipsWideValues(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpLui, Rd: 1, Imm: 2}, // 0x20000: does not fit imm16
		isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 1, Imm: 1},
		isa.Inst{Op: isa.OpSw, Rd: 2, Rs1: 8, Imm: 0},
		isa.Inst{Op: isa.OpSw, Rd: 1, Rs1: 8, Imm: 4},
	)
	st := optimize(tr)
	if st.ConstFolded != 0 {
		t.Fatalf("wide values must not fold: %+v", st)
	}
	if len(tr.body) != 4 {
		t.Fatalf("nothing should be removed: %v", tr.body)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 1}, // dead: overwritten below
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 2}, // live: stored
		isa.Inst{Op: isa.OpSw, Rd: 1, Rs1: 8, Imm: 0},
	)
	st := optimize(tr)
	if st.DeadRemoved != 1 {
		t.Fatalf("DeadRemoved = %d, want 1", st.DeadRemoved)
	}
	if len(tr.body) != 2 {
		t.Fatalf("body = %v", tr.body)
	}
}

func TestDCERespectsExitBarriers(t *testing.T) {
	// The write before the branch is observable at the side exit: keep it.
	tr := transOf(
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 1},
		isa.Inst{Op: isa.OpBeq, Rd: 2, Rs1: 3, Imm: 0}, // exit barrier
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 2},
		isa.Inst{Op: isa.OpSw, Rd: 1, Rs1: 8, Imm: 0},
	)
	tr.fixups = []stubFixup{{bodyIdx: 1, side: 0}}
	tr.sides = []localStub{{target: 0x100}}
	st := optimize(tr)
	if st.DeadRemoved != 0 {
		t.Fatalf("write live at exit was removed: %+v", st)
	}
}

func TestDCEKeepsLoads(t *testing.T) {
	// A load whose result is dead is still kept (fault semantics).
	tr := transOf(
		isa.Inst{Op: isa.OpLw, Rd: 1, Rs1: 8, Imm: 0},
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 2},
		isa.Inst{Op: isa.OpSw, Rd: 1, Rs1: 8, Imm: 0},
	)
	st := optimize(tr)
	if st.DeadRemoved != 0 || len(tr.body) != 3 {
		t.Fatalf("load must survive DCE: %v %+v", tr.body, st)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpSw, Rd: 3, Rs1: 8, Imm: 16},
		isa.Inst{Op: isa.OpLw, Rd: 4, Rs1: 8, Imm: 16}, // becomes move r4 = r3
		isa.Inst{Op: isa.OpSw, Rd: 4, Rs1: 8, Imm: 32},
	)
	st := optimize(tr)
	if st.LoadsForwarded != 1 {
		t.Fatalf("LoadsForwarded = %d, want 1", st.LoadsForwarded)
	}
	if tr.body[1].Op != isa.OpAdd || tr.body[1].Rs1 != 3 || tr.body[1].Rs2 != isa.RZero {
		t.Fatalf("forwarded load wrong: %v", tr.body[1])
	}
}

func TestStoreLoadSameRegisterRemoved(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpSw, Rd: 3, Rs1: 8, Imm: 16},
		isa.Inst{Op: isa.OpLw, Rd: 3, Rs1: 8, Imm: 16}, // redundant reload
		isa.Inst{Op: isa.OpSw, Rd: 3, Rs1: 8, Imm: 32},
	)
	st := optimize(tr)
	if st.LoadsForwarded != 1 || st.InstsRemoved == 0 {
		t.Fatalf("redundant reload should vanish: %+v", st)
	}
	if len(tr.body) != 2 {
		t.Fatalf("body = %v", tr.body)
	}
}

func TestForwardingInvalidatedByBaseWrite(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpSw, Rd: 3, Rs1: 8, Imm: 16},
		isa.Inst{Op: isa.OpAddi, Rd: 8, Rs1: 8, Imm: 4}, // base changed
		isa.Inst{Op: isa.OpLw, Rd: 4, Rs1: 8, Imm: 16},
		isa.Inst{Op: isa.OpSw, Rd: 4, Rs1: 8, Imm: 0},
		isa.Inst{Op: isa.OpSw, Rd: 8, Rs1: 0, Imm: 0},
	)
	st := optimize(tr)
	if st.LoadsForwarded != 0 {
		t.Fatalf("stale fact forwarded: %+v", st)
	}
}

func TestForwardingInvalidatedByOtherStore(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpSw, Rd: 3, Rs1: 8, Imm: 16},
		isa.Inst{Op: isa.OpSw, Rd: 5, Rs1: 9, Imm: 0}, // may alias
		isa.Inst{Op: isa.OpLw, Rd: 4, Rs1: 8, Imm: 16},
		isa.Inst{Op: isa.OpSw, Rd: 4, Rs1: 8, Imm: 32},
	)
	st := optimize(tr)
	if st.LoadsForwarded != 0 {
		t.Fatalf("aliasing store ignored: %+v", st)
	}
}

func TestConstPropSkippedForLoops(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1}, // depends on back edge
		isa.Inst{Op: isa.OpSw, Rd: 1, Rs1: 8, Imm: 0},
	)
	tr.loopClose = true
	st := optimize(tr)
	if st.ConstFolded != 0 {
		t.Fatalf("loop bodies must not constant-fold: %+v", st)
	}
}

func TestFixupRemapAcrossDeletions(t *testing.T) {
	tr := transOf(
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 1},        // dead
		isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 2},        // live via branch read
		isa.Inst{Op: isa.OpBne, Rd: 1, Rs1: 0, Imm: 0}, // fixup target
	)
	tr.fixups = []stubFixup{{bodyIdx: 2, side: 0}}
	tr.sides = []localStub{{target: 0x40}}
	_ = optimize(tr)
	if len(tr.body) != 2 {
		t.Fatalf("body = %v", tr.body)
	}
	if tr.fixups[0].bodyIdx != 1 {
		t.Fatalf("fixup not remapped: %+v", tr.fixups[0])
	}
	if !isa.IsBranch(tr.body[tr.fixups[0].bodyIdx].Op) {
		t.Fatal("fixup no longer points at a branch")
	}
}

// The decisive test: optimized DBT execution is behaviourally identical to
// the interpreter, and strictly cheaper than unoptimized execution.
func TestOptimizerEquivalenceAndEffect(t *testing.T) {
	for seed := uint64(41); seed <= 45; seed++ {
		p, err := program.Generate(program.DefaultGenConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		const budget = 50_000_000
		ref := runRef(t, p, budget)

		cfgOpt := DefaultConfig()
		cfgOpt.Optimize = true
		dOpt := runDBT(t, p, cfgOpt, budget)
		assertEquivalent(t, ref, dOpt, "optimized")

		cfgPlain := DefaultConfig()
		cfgPlain.Optimize = false
		dPlain := runDBT(t, p, cfgPlain, budget)
		assertEquivalent(t, ref, dPlain, "unoptimized")

		so, sp := dOpt.Stats(), dPlain.Stats()
		if so.OptConstFolded+so.OptDeadRemoved+so.OptLoadsForwarded == 0 {
			t.Errorf("seed %d: optimizer did nothing", seed)
		}
		if sp.OptConstFolded != 0 {
			t.Errorf("seed %d: optimizer ran while disabled", seed)
		}
		if so.TranslatedBytes >= sp.TranslatedBytes {
			t.Errorf("seed %d: optimization should shrink translations (%d vs %d)",
				seed, so.TranslatedBytes, sp.TranslatedBytes)
		}
	}
}

func TestOptimizerEquivalenceUnderEviction(t *testing.T) {
	gen := program.DefaultGenConfig(53)
	gen.NumFuncs = 48
	gen.PhaseFuncs = 16
	gen.Phases = 6
	p, err := program.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000_000
	ref := runRef(t, p, budget)
	cfg := DefaultConfig()
	cfg.Optimize = true
	cfg.CacheCapacity = 4 << 10
	d := runDBT(t, p, cfg, budget)
	assertEquivalent(t, ref, d, "optimized-tiny-cache")
	if d.Cache().Stats().EvictionInvocations == 0 {
		t.Fatal("tiny cache never evicted")
	}
}

// Property-style check: optimize never changes the observable effect of a
// straight-line body executed from a random machine state.
func TestOptimizePreservesStraightLineSemantics(t *testing.T) {
	progs := [][]isa.Inst{
		{
			{Op: isa.OpAddi, Rd: 1, Imm: 7},
			{Op: isa.OpAddi, Rd: 2, Imm: 9},
			{Op: isa.OpMul, Rd: 3, Rs1: 1, Rs2: 2},
			{Op: isa.OpSw, Rd: 3, Rs1: 8, Imm: 0},
			{Op: isa.OpLw, Rd: 4, Rs1: 8, Imm: 0},
			{Op: isa.OpAdd, Rd: 5, Rs1: 4, Rs2: 3},
			{Op: isa.OpSw, Rd: 5, Rs1: 8, Imm: 8},
		},
		{
			{Op: isa.OpLui, Rd: 1, Imm: 1},
			{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: -4},
			{Op: isa.OpShr, Rd: 2, Rs1: 1, Rs2: 0},
			{Op: isa.OpSw, Rd: 2, Rs1: 8, Imm: 16},
			{Op: isa.OpSw, Rd: 1, Rs1: 8, Imm: 20},
		},
	}
	for pi, body := range progs {
		run := func(insts []isa.Inst) ([16]uint32, []byte) {
			m := interp.New(1 << 12)
			m.Regs[8] = 256 // data base
			for _, in := range insts {
				if err := m.Exec(in); err != nil {
					t.Fatal(err)
				}
			}
			mem := make([]byte, 64)
			copy(mem, m.Mem[256:256+64])
			return m.Regs, mem
		}
		wantRegs, wantMem := run(body)
		tr := transOf(append([]isa.Inst(nil), body...)...)
		optimize(tr)
		gotRegs, gotMem := run(tr.body)
		if gotRegs != wantRegs {
			t.Errorf("prog %d: registers diverge after optimization", pi)
		}
		for i := range wantMem {
			if gotMem[i] != wantMem[i] {
				t.Errorf("prog %d: memory diverges at %d", pi, i)
				break
			}
		}
	}
}
