package dbt

import (
	"fmt"

	"dynocache/internal/isa"
)

// This file implements the basic-block cache — the first of DynamoRIO's
// two code caches (§2.2): "a basic-block cache stores all single-entry,
// single-exit regions that have been encountered during execution, which
// allows DynamoRIO to avoid the high overhead of interpretation during
// every execution of a basic block."
//
// Cold blocks are translated individually into a separate cache region and
// executed from there; once a block's entry count crosses the hotness
// threshold, the usual superblock machinery takes over. Chaining follows
// DynamoRIO's trace-head discipline: a fragment may be linked directly to
// a *forward* basic-block target (straight-line chains bypass the
// dispatcher), but backward targets — loop heads, the candidates for
// superblock formation — stay unlinked so the dispatcher keeps counting
// them. Exits to superblocks always chain.

// Fragment IDs come from the DBT's single dense allocator (allocID); the
// idKind table — not ID bits — tells superblocks, bb fragments, and wrap
// pads apart, keeping the ID space dense for the caches' slice tables.

// translateBB lowers a single basic block into fragment code. Unlike
// superblock translation there is no recorded hot direction: a conditional
// branch keeps both ways as exits (the taken side through a side stub, the
// fall-through via the tail stub).
func translateBB(bb *basicBlock) (*translation, error) {
	t := &translation{headPC: bb.pc}
	insts := bb.insts
	for _, in := range insts[:len(insts)-1] {
		t.body = append(t.body, in)
	}
	term := bb.terminator()
	termPC := bb.pc + uint32((len(insts)-1)*isa.WordSize)
	fallPC := termPC + isa.WordSize
	switch {
	case isa.IsBranch(term.Op):
		taken := term.BranchTarget(termPC)
		if taken != fallPC {
			t.sides = append(t.sides, localStub{target: taken})
			t.fixups = append(t.fixups, stubFixup{bodyIdx: len(t.body), side: 0})
			t.body = append(t.body, isa.Inst{Op: term.Op, Rd: term.Rd, Rs1: term.Rs1})
		}
		t.tail = &localStub{target: fallPC}
	case term.Op == isa.OpJmp:
		t.tail = &localStub{target: term.BranchTarget(termPC)}
	case term.Op == isa.OpJal:
		t.body = materializeLink(t.body, fallPC)
		t.tail = &localStub{target: term.BranchTarget(termPC)}
	case term.Op == isa.OpJr:
		t.tail = &localStub{indirect: true, reg: term.Rs1}
	case term.Op == isa.OpJalr:
		t.body = materializeLink(t.body, fallPC)
		t.tail = &localStub{indirect: true, reg: term.Rs1}
	case term.Op == isa.OpHalt:
		t.body = append(t.body, term)
	default:
		return nil, fmt.Errorf("dbt: unexpected bb terminator %s at %#x", term.Op, bb.pc)
	}
	return t, nil
}

// installBBFragment translates the basic block at pc into the bb cache.
func (d *DBT) installBBFragment(pc uint32) error {
	bb, err := d.lookupBB(pc)
	if err != nil {
		return err
	}
	t, err := translateBB(bb)
	if err != nil {
		return err
	}
	if d.cfg.Optimize {
		ost := optimize(t)
		d.stats.OptConstFolded += uint64(ost.ConstFolded)
		d.stats.OptDeadRemoved += uint64(ost.DeadRemoved)
		d.stats.OptLoadsForwarded += uint64(ost.LoadsForwarded)
	}
	id := d.allocID(kindBB)
	addr, err := d.installFragment(t, id, pc, d.bbFrag, d.bbBase)
	if err != nil {
		return fmt.Errorf("dbt: bb fragment at %#x: %w", pc, err)
	}
	d.bbHash[pc] = addr
	d.bbIDOf[pc] = id
	d.stats.BBFragsTranslated++
	d.stats.BBFragBytes += uint64(t.instCount() * isa.WordSize)

	if d.cfg.Chaining {
		// Eagerly chain this fragment's direct exits to superblocks and to
		// forward bb fragments (never to backward targets: those are trace
		// heads the dispatcher must keep counting).
		for _, idx := range d.stubsOf[id] {
			st := d.stubs[idx]
			if st.indirect {
				continue
			}
			if taddr, ok := d.hash[st.target]; ok {
				d.patchStub(idx, taddr, d.idOf[st.target])
			} else if taddr, ok := d.bbHash[st.target]; ok && st.target > pc {
				d.patchStub(idx, taddr, d.bbIDOf[st.target])
			}
		}
	}
	return nil
}

// dispatchBB handles a dispatcher arrival at a guest PC with the bb cache
// enabled: count the block (trace-head profiling happens here), promote it
// to a superblock at the threshold, otherwise execute its fragment,
// translating it on first contact.
func (d *DBT) dispatchBB(pc uint32, maxInsts uint64) error {
	d.hotness[pc]++
	if d.hotness[pc] >= d.cfg.HotThreshold {
		// Execute the head once through the interpreter so formation can
		// record its taken direction, then build the superblock.
		if _, err := d.executeBB(pc); err != nil {
			return err
		}
		return d.formAndInstall(pc)
	}
	addr, ok := d.bbHash[pc]
	if !ok {
		if err := d.installBBFragment(pc); err != nil {
			return err
		}
		addr = d.bbHash[pc]
	}
	return d.executeCached(addr, maxInsts)
}
