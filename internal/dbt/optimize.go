package dbt

import "dynocache/internal/isa"

// This file implements the superblock optimizer. Dynamic optimization
// systems earn their keep by improving the code they cache (§1: "increased
// instruction locality and code optimization improves steady state
// performance"); dynocache's translator runs three classic trace
// optimizations over the straight-line superblock body:
//
//  1. constant propagation and folding — immediates flow through ALU ops;
//     computable results collapse into single addi instructions (this also
//     shrinks the lui/addi pairs emitted for guest return addresses);
//  2. dead code elimination — pure register writes that are provably
//     overwritten before any use or side exit are dropped;
//  3. store-to-load forwarding — a load from an address just stored to
//     becomes a register move (or disappears entirely).
//
// A superblock is single-entry, so the body is a straight line for
// dataflow purposes: conditional branches only *exit*. Every exit (branch,
// trap, halt) is a full barrier — all architectural registers are live
// there because execution continues in unoptimized guest code.
// Loop-closing traces re-enter the body top, so constant propagation is
// disabled for them (facts proven on the first iteration need not hold on
// the back edge).

// OptStats counts the optimizer's work for one superblock.
type OptStats struct {
	ConstFolded    int // instructions replaced by immediate loads
	DeadRemoved    int // pure writes eliminated
	LoadsForwarded int // loads turned into moves or removed
	InstsRemoved   int // total instructions deleted from the body
}

func (a *OptStats) add(b OptStats) {
	a.ConstFolded += b.ConstFolded
	a.DeadRemoved += b.DeadRemoved
	a.LoadsForwarded += b.LoadsForwarded
	a.InstsRemoved += b.InstsRemoved
}

// optimize runs the pass pipeline over the translation body, remapping the
// side-exit fixups across deletions.
func optimize(t *translation) OptStats {
	var total OptStats
	if !t.loopClose {
		total.add(propagateConstants(t))
	}
	total.add(forwardStores(t))
	total.add(eliminateDead(t))
	return total
}

// regWrites returns the register an instruction writes, if any.
func regWrites(in isa.Inst) (isa.Reg, bool) {
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpSlt,
		isa.OpAddi, isa.OpLui, isa.OpLw:
		if in.Rd != isa.RZero {
			return in.Rd, true
		}
	}
	return 0, false
}

// regReads returns the registers an instruction reads.
func regReads(in isa.Inst) []isa.Reg {
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpSlt:
		return []isa.Reg{in.Rs1, in.Rs2}
	case isa.OpAddi, isa.OpLw, isa.OpJr, isa.OpJalr:
		return []isa.Reg{in.Rs1}
	case isa.OpSw:
		return []isa.Reg{in.Rd, in.Rs1}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return []isa.Reg{in.Rd, in.Rs1}
	}
	return nil
}

// isBarrier reports whether an instruction ends straight-line reasoning:
// all registers must be considered live and memory state unknown beyond it.
func isBarrier(in isa.Inst) bool {
	return isa.EndsBlock(in.Op) || in.Op == isa.OpSyscall
}

// propagateConstants runs forward constant propagation and folding.
func propagateConstants(t *translation) OptStats {
	var st OptStats
	known := map[isa.Reg]uint32{}
	set := func(r isa.Reg, v uint32) {
		if r != isa.RZero {
			known[r] = v
		}
	}
	get := func(r isa.Reg) (uint32, bool) {
		if r == isa.RZero {
			return 0, true
		}
		v, ok := known[r]
		return v, ok
	}
	for i, in := range t.body {
		switch in.Op {
		case isa.OpLui:
			set(in.Rd, uint32(in.Imm)<<16)
		case isa.OpAddi:
			if v, ok := get(in.Rs1); ok {
				val := v + uint32(in.Imm)
				set(in.Rd, val)
				// Canonicalize to a direct immediate load when possible
				// (turns lui/addi pairs into single instructions and lets
				// DCE collect the dead lui).
				if in.Rs1 != isa.RZero && fitsImm16(val) {
					t.body[i] = isa.Inst{Op: isa.OpAddi, Rd: in.Rd, Imm: int32(int16(uint16(val)))}
					st.ConstFolded++
				}
			} else {
				delete(known, in.Rd)
			}
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpMul, isa.OpSlt:
			a, aok := get(in.Rs1)
			b, bok := get(in.Rs2)
			if aok && bok {
				val := evalALU(in.Op, a, b)
				set(in.Rd, val)
				if fitsImm16(val) {
					t.body[i] = isa.Inst{Op: isa.OpAddi, Rd: in.Rd, Imm: int32(int16(uint16(val)))}
					st.ConstFolded++
				}
			} else {
				delete(known, in.Rd)
			}
		case isa.OpLw:
			delete(known, in.Rd)
		case isa.OpSw:
			// no register writes
		case isa.OpSyscall:
			// The handler may modify anything.
			known = map[isa.Reg]uint32{}
		default:
			if isBarrier(in) {
				// Facts survive a conditional side exit on the
				// fall-through path, but be conservative anyway: the
				// payoff past branches is small.
				known = map[isa.Reg]uint32{}
			}
		}
	}
	return st
}

func fitsImm16(v uint32) bool {
	s := int32(v)
	return s >= -(1<<15) && s < 1<<15
}

func evalALU(op isa.Opcode, a, b uint32) uint32 {
	switch op {
	case isa.OpAdd:
		return a + b
	case isa.OpSub:
		return a - b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (b & 31)
	case isa.OpShr:
		return a >> (b & 31)
	case isa.OpMul:
		return a * b
	case isa.OpSlt:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	default:
		panic("dbt: evalALU on non-ALU opcode")
	}
}

// forwardStores turns loads that read a just-stored location into register
// moves, and deletes them entirely when source and destination coincide.
type memFact struct {
	base  isa.Reg
	off   int32
	value isa.Reg
}

func forwardStores(t *translation) OptStats {
	var st OptStats
	var facts []memFact
	invalidateReg := func(r isa.Reg) {
		out := facts[:0]
		for _, f := range facts {
			if f.base != r && f.value != r {
				out = append(out, f)
			}
		}
		facts = out
	}
	lookup := func(base isa.Reg, off int32) (isa.Reg, bool) {
		for _, f := range facts {
			if f.base == base && f.off == off {
				return f.value, true
			}
		}
		return 0, false
	}
	keep := make([]isa.Inst, 0, len(t.body))
	idxMap := make([]int, len(t.body))
	for i, in := range t.body {
		emit := true
		switch in.Op {
		case isa.OpSw:
			// A store may alias any other tracked location: keep only the
			// fact it establishes.
			facts = facts[:0]
			facts = append(facts, memFact{base: in.Rs1, off: in.Imm, value: in.Rd})
		case isa.OpLw:
			if v, ok := lookup(in.Rs1, in.Imm); ok {
				st.LoadsForwarded++
				if v == in.Rd {
					// The register already holds the value; the store
					// proved the address maps, so dropping the load is
					// fault-equivalent.
					emit = false
					st.InstsRemoved++
				} else {
					in = isa.Inst{Op: isa.OpAdd, Rd: in.Rd, Rs1: v, Rs2: isa.RZero}
				}
			}
			if emit {
				if w, ok := regWrites(in); ok {
					invalidateReg(w)
				}
			}
		case isa.OpSyscall:
			facts = facts[:0]
		default:
			if isBarrier(in) {
				// Conditional exits leave memory intact on the
				// fall-through path; facts survive. Other barriers end
				// the body anyway.
			} else if w, ok := regWrites(in); ok {
				invalidateReg(w)
			}
		}
		idxMap[i] = len(keep)
		if emit {
			keep = append(keep, in)
		}
	}
	remap(t, keep, idxMap)
	return st
}

// eliminateDead removes pure register writes that are overwritten before
// any read or barrier.
func eliminateDead(t *translation) OptStats {
	var st OptStats
	live := allLive()
	dead := make([]bool, len(t.body))
	for i := len(t.body) - 1; i >= 0; i-- {
		in := t.body[i]
		if isBarrier(in) {
			live = allLive()
			continue
		}
		w, writes := regWrites(in)
		pure := writes && in.Op != isa.OpLw // loads can fault; keep them
		if pure && !live[w] {
			dead[i] = true
			st.DeadRemoved++
			st.InstsRemoved++
			continue
		}
		if writes {
			live[w] = false
		}
		for _, r := range regReads(in) {
			live[r] = true
		}
	}
	keep := make([]isa.Inst, 0, len(t.body))
	idxMap := make([]int, len(t.body))
	for i, in := range t.body {
		idxMap[i] = len(keep)
		if !dead[i] {
			keep = append(keep, in)
		}
	}
	remap(t, keep, idxMap)
	return st
}

func allLive() [isa.NumRegs]bool {
	var l [isa.NumRegs]bool
	for i := range l {
		l[i] = true
	}
	return l
}

// remap installs the rewritten body and relocates side-exit fixups.
// Branch instructions are never deleted, so every fixup survives.
func remap(t *translation, keep []isa.Inst, idxMap []int) {
	if len(keep) == len(t.body) {
		t.body = keep
		return
	}
	for i := range t.fixups {
		t.fixups[i].bodyIdx = idxMap[t.fixups[i].bodyIdx]
	}
	t.body = keep
}
