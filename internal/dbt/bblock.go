package dbt

import (
	"fmt"

	"dynocache/internal/isa"
)

// basicBlock is a decoded single-entry, single-exit guest region, the unit
// DynamoRIO's basic-block cache stores (§2.2).
type basicBlock struct {
	pc    uint32
	insts []isa.Inst
}

// size returns the block's guest footprint in bytes.
func (b *basicBlock) size() int { return len(b.insts) * isa.WordSize }

// terminator returns the final (block-ending) instruction.
func (b *basicBlock) terminator() isa.Inst { return b.insts[len(b.insts)-1] }

// maxBBInsts bounds runaway decodes (a block must end eventually; guest
// programs top out far below this).
const maxBBInsts = 4096

// lookupBB returns the basic block starting at pc, decoding and caching it
// on first sight (the basic-block cache lookup of Figure 1).
func (d *DBT) lookupBB(pc uint32) (*basicBlock, error) {
	if bb, ok := d.bbCache[pc]; ok {
		return bb, nil
	}
	bb := &basicBlock{pc: pc}
	for at := pc; ; at += isa.WordSize {
		in, err := d.m.Fetch(at)
		if err != nil {
			return nil, fmt.Errorf("dbt: decoding block at %#x: %w", pc, err)
		}
		if in.Op == isa.OpTrap {
			return nil, fmt.Errorf("dbt: guest code at %#x contains a trap", at)
		}
		bb.insts = append(bb.insts, in)
		if isa.EndsBlock(in.Op) {
			break
		}
		if len(bb.insts) >= maxBBInsts {
			return nil, fmt.Errorf("dbt: unterminated basic block at %#x", pc)
		}
	}
	d.bbCache[pc] = bb
	d.stats.BBsDiscovered++
	return bb, nil
}

// executeBB interprets one basic block in place, advancing machine state,
// and returns the block.
func (d *DBT) executeBB(pc uint32) (*basicBlock, error) {
	bb, err := d.lookupBB(pc)
	if err != nil {
		return nil, err
	}
	for _, in := range bb.insts {
		if err := d.m.Exec(in); err != nil {
			return nil, err
		}
		if d.m.Halted {
			break
		}
	}
	d.stats.BBExecutions++
	d.stats.InterpretedInsts += uint64(len(bb.insts))
	return bb, nil
}

// interpretAndProfile interprets the block at the current PC, bumps its
// hotness counter, and forms a superblock once the block crosses the
// threshold (§4.1: DynamoRIO considers a superblock hot at 50 executions).
func (d *DBT) interpretAndProfile() error {
	pc := d.m.PC
	if _, err := d.executeBB(pc); err != nil {
		return err
	}
	d.hotness[pc]++
	// ">=" rather than "==": after a superblock is evicted, the next
	// interpretation regenerates it immediately (its heat is proven).
	if d.hotness[pc] >= d.cfg.HotThreshold {
		if err := d.formAndInstall(pc); err != nil {
			return err
		}
	}
	return nil
}
