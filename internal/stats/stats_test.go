package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestSumKahanAccuracy(t *testing.T) {
	// 1 followed by many tiny values: naive summation loses them.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Sum = %.17g, want %.17g", got, want)
	}
}

func TestWeightedMeanMatchesEquation1(t *testing.T) {
	// Equation 1: unified miss rate = sum(misses) / sum(accesses)
	// = weighted mean of per-benchmark miss rates with access weights.
	misses := []float64{10, 30, 5}
	accesses := []float64{100, 200, 50}
	rates := make([]float64, len(misses))
	for i := range rates {
		rates[i] = misses[i] / accesses[i]
	}
	got, err := WeightedMean(rates, accesses)
	if err != nil {
		t.Fatal(err)
	}
	want := (10.0 + 30 + 5) / (100.0 + 200 + 50)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("WeightedMean = %g, want %g", got, want)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %g, want 2.5", got)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %g, want 9", got)
	}
}

func TestQuantilesConsistentWithQuantile(t *testing.T) {
	xs := []float64{7, 2, 9, 4, 4, 1}
	qs := []float64{0.1, 0.5, 0.9}
	multi := Quantiles(xs, qs...)
	for i, q := range qs {
		if single := Quantile(xs, q); single != multi[i] {
			t.Fatalf("Quantiles[%d] = %g, Quantile = %g", i, multi[i], single)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 4, 1e-9) {
		t.Fatalf("GeoMean = %g, want 4", got)
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("negative sample should error")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty sample should error")
	}
}

// Property: the median lies between min and max, and quantiles are monotone.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.125 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		min, max, _ := MinMax(xs)
		med := Median(xs)
		return med >= min && med <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean of xs is within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		min, max, _ := MinMax(xs)
		const eps = 1e-6
		return m >= min-eps*math.Abs(min)-eps && m <= max+eps*math.Abs(max)+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
