package stats

import (
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("empty range should error")
	}
	if _, err := NewHistogram(10, 0, 5); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5)   // bin 0
	h.Observe(15)  // bin 1
	h.Observe(95)  // bin 9
	h.Observe(-1)  // underflow
	h.Observe(100) // overflow
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[9] != 1 {
		t.Fatalf("unexpected bin counts: %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.Total != 5 {
		t.Fatalf("Total = %d, want 5", h.Total)
	}
}

func TestHistogramMeanAndCenters(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	h.Observe(2)
	h.Observe(4)
	if got := h.Mean(); got != 3 {
		t.Fatalf("Mean = %g, want 3", got)
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("BinCenter(0) = %g, want 0.5", got)
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
}

func TestHistogramFractionAndCDF(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 3.5} {
		h.Observe(x)
	}
	if got := h.Fraction(1); got != 0.5 {
		t.Fatalf("Fraction(1) = %g, want 0.5", got)
	}
	if got := h.CDF(1); got != 0.75 {
		t.Fatalf("CDF(1) = %g, want 0.75", got)
	}
	if got := h.CDF(3); got != 1 {
		t.Fatalf("CDF(3) = %g, want 1", got)
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.Observe(0.5)
	h.Observe(0.6)
	h.Observe(1.5)
	s := h.String()
	if !strings.Contains(s, "#") || strings.Count(s, "\n") != 2 {
		t.Fatalf("unexpected histogram rendering:\n%s", s)
	}
}

func TestLogBucketHistogram(t *testing.T) {
	h := NewLogBucketHistogram()
	h.Observe(1)    // e=0
	h.Observe(2)    // e=1
	h.Observe(3)    // e=1
	h.Observe(1024) // e=10
	h.Observe(0)    // clamped to e=0
	if h.Total != 5 {
		t.Fatalf("Total = %d, want 5", h.Total)
	}
	bs := h.Buckets()
	if len(bs) != 3 || bs[0] != 0 || bs[1] != 1 || bs[2] != 10 {
		t.Fatalf("Buckets = %v", bs)
	}
	if got := h.Fraction(1); got != 0.4 {
		t.Fatalf("Fraction(1) = %g, want 0.4", got)
	}
	var empty LogBucketHistogram
	if empty.Fraction(0) != 0 {
		t.Error("empty log histogram fraction should be 0")
	}
}
