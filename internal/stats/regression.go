package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least-squares fit of y = Slope*x +
// Intercept. It is the tool behind the paper's Equations 2-4, which were
// derived from least-squares trendlines over PAPI instruction-count samples
// (Figure 9).
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int     // number of samples fitted
}

// String renders the fit the way the paper prints its equations, e.g.
// "y = 2.77*x + 3055 (R^2=0.98, n=10000)".
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g*x + %.4g (R^2=%.4f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// LeastSquares fits y = a*x + b by ordinary least squares.
func LeastSquares(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched x/y lengths")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least two samples for a line fit")
	}
	meanX := Mean(xs)
	meanY := Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - meanX
		sxx += dx * dx
		sxy += dx * (ys[i] - meanY)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit (all x identical)")
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX

	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		r := ys[i] - pred
		ssRes += r * r
		d := ys[i] - meanY
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// Pearson returns the Pearson correlation coefficient of xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, errors.New("stats: need two equal-length samples of size >= 2")
	}
	meanX, meanY := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
