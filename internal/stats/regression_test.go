package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.77*x + 3055 // the paper's Equation 2
	}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2.77, 1e-9) || !almostEqual(fit.Intercept, 3055, 1e-6) {
		t.Fatalf("fit = %+v, want slope 2.77 intercept 3055", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %g, want 1", fit.R2)
	}
	if fit.N != 5 {
		t.Fatalf("N = %d, want 5", fit.N)
	}
}

func TestLeastSquaresNoisyRecovery(t *testing.T) {
	r := NewRand(42, 1)
	var xs, ys []float64
	for i := 0; i < 5000; i++ {
		x := 100 + r.Float64()*4000
		y := 75.4*x + 1922 + r.Normal(0, 500) // Equation 3 with noise
		xs = append(xs, x)
		ys = append(ys, y)
	}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-75.4) > 0.5 {
		t.Fatalf("slope = %g, want ~75.4", fit.Slope)
	}
	if math.Abs(fit.Intercept-1922) > 200 {
		t.Fatalf("intercept = %g, want ~1922", fit.Intercept)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %g, want > 0.99", fit.R2)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := LeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should error")
	}
}

func TestLinearFitPredictAndString(t *testing.T) {
	fit := LinearFit{Slope: 2, Intercept: 1, R2: 0.5, N: 3}
	if got := fit.Predict(10); got != 21 {
		t.Fatalf("Predict(10) = %g, want 21", got)
	}
	s := fit.String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "2*x") {
		t.Fatalf("String() = %q, missing expected pieces", s)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %g, want 1", r)
	}
	neg := []float64{40, 30, 20, 10}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %g, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("too few samples should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}
