package stats

import "math"

// Rand is a small, deterministic PRNG (PCG-XSH-RR 64/32 variant state with
// splitmix-style output) with the distribution samplers dynocache needs.
// We implement it directly rather than wrapping math/rand so that trace
// generation is bit-reproducible across Go releases — the paper stresses
// that its saved DynamoRIO logs made experiments repeatable, and our
// synthetic logs must have the same property.
type Rand struct {
	state uint64
	inc   uint64

	// cached spare normal deviate for the Box-Muller transform
	hasSpare bool
	spare    float64
}

// NewRand returns a generator seeded from seed and an odd stream id derived
// from stream.
func NewRand(seed, stream uint64) *Rand {
	r := &Rand{inc: (stream << 1) | 1}
	r.state = 0
	r.Uint64()
	r.state += seed
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	// splitmix64-style step with a PCG-like stream increment: fast, good
	// equidistribution, and trivially reproducible.
	r.state += 0x9E3779B97F4A7C15 + r.inc
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Normal returns a normal deviate with the given mean and standard
// deviation, via the Box-Muller transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return mean + stddev*u*mul
}

// LogNormal returns a log-normal deviate parameterized by the *median* of
// the distribution and the shape sigma (the stddev of the underlying
// normal). Superblock sizes are modelled as log-normal: Figure 3 shows
// heavily right-skewed size distributions and Figure 4 reports medians.
func (r *Rand) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(r.Normal(0, sigma))
}

// Geometric returns a deviate in {0, 1, 2, ...} with the given mean
// (mean = (1-p)/p for success probability p).
func (r *Rand) Geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	// Inversion: floor(log(U) / log(1-p)).
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	g := math.Floor(math.Log(u) / math.Log(1-p))
	if g < 0 {
		return 0
	}
	if g > 1<<30 {
		return 1 << 30
	}
	return int(g)
}

// Zipf returns a deviate in [0, n) drawn from a Zipf-like distribution with
// exponent s >= 0 (s = 0 is uniform). Used for reuse-distance sampling in
// the temporal-locality model: small ranks (recently used superblocks) are
// much more likely than deep ones.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 0 {
		return r.Intn(n)
	}
	// Inverse-CDF on the continuous approximation of the Zipf mass:
	// P(rank <= k) ~ H(k)/H(n) where H is the generalized harmonic sum.
	// The continuous approximation integral of x^-s from 1 to k is
	// (k^(1-s)-1)/(1-s) for s != 1, log(k) for s = 1.
	u := r.Float64()
	fn := float64(n)
	var k float64
	if math.Abs(s-1) < 1e-9 {
		k = math.Exp(u * math.Log(fn))
	} else {
		total := (math.Pow(fn, 1-s) - 1) / (1 - s)
		k = math.Pow(u*total*(1-s)+1, 1/(1-s))
	}
	idx := int(k) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }
