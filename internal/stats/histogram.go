package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over float64 samples. It backs the
// size-distribution plots (Figure 3) in the report package.
type Histogram struct {
	Lo, Hi float64  // range covered by the bins
	Counts []uint64 // one per bin
	Under  uint64   // samples below Lo
	Over   uint64   // samples at or above Hi
	Total  uint64   // all observed samples, including under/overflow
	width  float64  // bin width
	sum    float64  // running sum for Mean
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{
		Lo:     lo,
		Hi:     hi,
		Counts: make([]uint64, bins),
		width:  (hi - lo) / float64(bins),
	}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.Total++
	h.sum += x
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.width)
		if idx >= len(h.Counts) { // guard against FP edge at Hi
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Mean returns the mean of all observed samples.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return h.sum / float64(h.Total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// Fraction returns the fraction of in-range samples landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	inRange := h.Total - h.Under - h.Over
	if inRange == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(inRange)
}

// CDF returns the cumulative fraction of all samples at or below the upper
// edge of bin i (underflow included, overflow excluded).
func (h *Histogram) CDF(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	c := h.Under
	for j := 0; j <= i && j < len(h.Counts); j++ {
		c += h.Counts[j]
	}
	return float64(c) / float64(h.Total)
}

// String renders a compact ASCII sketch of the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	var max uint64
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = int(math.Round(40 * float64(c) / float64(max)))
		}
		fmt.Fprintf(&b, "%10.1f |%-40s| %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// LogBucketHistogram aggregates positive samples into power-of-two buckets;
// convenient for superblock sizes, which span ~16 B to ~16 KB.
type LogBucketHistogram struct {
	Counts map[int]uint64 // exponent -> count, bucket holds [2^e, 2^(e+1))
	Total  uint64
}

// NewLogBucketHistogram creates an empty power-of-two histogram.
func NewLogBucketHistogram() *LogBucketHistogram {
	return &LogBucketHistogram{Counts: make(map[int]uint64)}
}

// Observe records one positive sample; non-positive samples are counted in
// bucket 0.
func (h *LogBucketHistogram) Observe(x float64) {
	h.Total++
	e := 0
	if x >= 1 {
		e = int(math.Floor(math.Log2(x)))
	}
	h.Counts[e]++
}

// Buckets returns the populated exponents in ascending order.
func (h *LogBucketHistogram) Buckets() []int {
	es := make([]int, 0, len(h.Counts))
	for e := range h.Counts {
		es = append(es, e)
	}
	sort.Ints(es)
	return es
}

// Fraction returns the fraction of samples in bucket e.
func (h *LogBucketHistogram) Fraction(e int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[e]) / float64(h.Total)
}
