// Package stats provides the small statistical toolkit used throughout
// dynocache: descriptive statistics, least-squares regression, histograms,
// and deterministic random distributions.
//
// Everything here is deterministic given its inputs; random sampling is
// driven by an explicit *Rand so that experiment runs are repeatable, in
// the same spirit as the paper's saved DynamoRIO logs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensation so that long
// accumulations (millions of per-event overheads) stay accurate.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i).
// It is the generalization behind the paper's Equation 1 (the unified miss
// rate weights each benchmark's miss rate by its access count).
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, errors.New("stats: mismatched sample and weight lengths")
	}
	var num, den float64
	for i := range xs {
		num += ws[i] * xs[i]
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs. The input is not modified.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sortedQuantile(sorted, q)
}

// Quantiles returns multiple quantiles with a single sort pass.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = sortedQuantile(sorted, q)
	}
	return out
}

func sortedQuantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// GeoMean returns the geometric mean of strictly positive xs.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive samples")
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs))), nil
}
