package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(7, 3)
	b := NewRand(7, 3)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRandStreamsDiffer(t *testing.T) {
	a := NewRand(7, 1)
	b := NewRand(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams coincide %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(1, 1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRand(2, 1)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(3, 1)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(4, 1)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 3)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Fatalf("Normal mean = %g, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-3) > 0.05 {
		t.Fatalf("Normal stddev = %g, want ~3", s)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(5, 1)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(244, 1.0) // gzip-like median superblock size
	}
	med := Median(xs)
	if math.Abs(med-244)/244 > 0.05 {
		t.Fatalf("LogNormal median = %g, want ~244", med)
	}
	// Log-normal is right-skewed: mean > median.
	if Mean(xs) <= med {
		t.Fatalf("LogNormal mean %g should exceed median %g", Mean(xs), med)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(6, 1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(1.7)) // Figure 12's mean outbound links
	}
	got := sum / n
	if math.Abs(got-1.7) > 0.05 {
		t.Fatalf("Geometric mean = %g, want ~1.7", got)
	}
	if r.Geometric(0) != 0 {
		t.Error("Geometric(0) should be 0")
	}
	if r.Geometric(-1) != 0 {
		t.Error("Geometric(-1) should be 0")
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := NewRand(7, 1)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		v := r.Zipf(100, 1.2)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 should dominate rank 50 heavily for s=1.2.
	if counts[0] < 5*counts[50]+1 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if r.Zipf(1, 1.2) != 0 {
		t.Error("Zipf(1, s) must be 0")
	}
	if v := r.Zipf(10, 0); v < 0 || v >= 10 {
		t.Errorf("Zipf with s=0 out of range: %d", v)
	}
}

func TestZipfNearOneExponent(t *testing.T) {
	r := NewRand(8, 1)
	for i := 0; i < 1000; i++ {
		v := r.Zipf(64, 1.0)
		if v < 0 || v >= 64 {
			t.Fatalf("Zipf(s=1) out of range: %d", v)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRand(9, 1)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %g", got)
	}
}
