// Package report renders experiment results as aligned ASCII tables, bar
// charts, and CSV — the textual equivalents of the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are kept
// and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v except float64, which uses %.4g.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(row...)
}

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numeric-looking cells, left-align text.
			if looksNumeric(cell) {
				fmt.Fprintf(&b, "%*s", width, cell)
			} else {
				fmt.Fprintf(&b, "%-*s", width, cell)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if len(t.Headers) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
			return err
		}
		total := 0
		for _, width := range widths {
			total += width + 2
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if len(t.Headers) > 0 {
		if err := writeRow(t.Headers); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '-' || r == '+':
			if i != 0 {
				return false
			}
		case r == '.' || r == '%' || r == 'e' || r == 'E':
			dot = true
		default:
			return false
		}
	}
	_ = dot
	return true
}

// BarChart renders labelled horizontal bars, the textual stand-in for the
// paper's bar figures.
type BarChart struct {
	Title  string
	Width  int // bar width in characters (default 50)
	labels []string
	values []float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 50}
}

// Add appends one labelled bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart to w; bars are scaled to the maximum value.
func (c *BarChart) Render(w io.Writer) error {
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	var max float64
	for _, v := range c.values {
		if v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range c.labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, l := range c.labels {
		bar := 0
		if max > 0 && c.values[i] > 0 {
			bar = int(math.Round(float64(c.Width) * c.values[i] / max))
		}
		if _, err := fmt.Fprintf(w, "%-*s |%-*s| %.4g\n",
			labelWidth, l, c.Width, strings.Repeat("#", bar), c.values[i]); err != nil {
			return err
		}
	}
	return nil
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}

// Sparkline renders a value series as a compact unicode strip, resampled
// to the given width. It backs the cache-occupancy timelines: the paper's
// future work calls for "a more detailed analysis and visualization" of
// cache contents over time.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	// Resample by averaging buckets.
	if width > len(vals) {
		width = len(vals)
	}
	var min, max float64
	min, max = vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range vals[lo:hi] {
			sum += v
		}
		avg := sum / float64(hi-lo)
		idx := 0
		if max > min {
			idx = int((avg - min) / (max - min) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out[i] = levels[idx]
	}
	return string(out)
}

// Series renders multi-series data (e.g. one line per granularity across
// pressure factors) as a compact matrix table — the textual form of the
// paper's line figures (7, 11, 15).
type Series struct {
	Title   string
	XLabel  string
	XValues []string             // e.g. pressure factors
	Lines   map[string][]float64 // series name -> one value per XValue
	Order   []string             // series rendering order
}

// NewSeries creates an empty multi-series container.
func NewSeries(title, xLabel string, xValues ...string) *Series {
	return &Series{Title: title, XLabel: xLabel, XValues: xValues, Lines: map[string][]float64{}}
}

// Set stores a named series; the value slice must match XValues in length.
func (s *Series) Set(name string, values []float64) error {
	if len(values) != len(s.XValues) {
		return fmt.Errorf("report: series %q has %d values, want %d", name, len(values), len(s.XValues))
	}
	if _, dup := s.Lines[name]; !dup {
		s.Order = append(s.Order, name)
	}
	s.Lines[name] = values
	return nil
}

// Render writes the series matrix to w.
func (s *Series) Render(w io.Writer) error {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.XValues...)...)
	for _, name := range s.Order {
		row := []string{name}
		for _, v := range s.Lines[name] {
			row = append(row, fmt.Sprintf("%.4g", v))
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// String renders the series to a string.
func (s *Series) String() string {
	var b strings.Builder
	_ = s.Render(&b)
	return b.String()
}
