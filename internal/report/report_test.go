package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Table 1. Benchmarks", "Name", "Superblocks", "Description")
	tab.AddRow("gzip", "301", "Compression")
	tab.AddRow("word", "18043", "Word Processor")
	out := tab.String()
	if !strings.Contains(out, "Table 1. Benchmarks") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	// Numeric column should be right-aligned: "  301" under "Superblocks".
	if !strings.Contains(out, "  301") {
		t.Fatalf("numeric cell not right-aligned:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRowf("x", 3.14159265, 42)
	out := tab.String()
	if !strings.Contains(out, "3.142") || !strings.Contains(out, "42") {
		t.Fatalf("AddRowf formatting wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "name", "desc")
	tab.AddRow("a", "plain")
	tab.AddRow("b", "has, comma")
	tab.AddRow("c", `has "quote"`)
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "name,desc") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, `"has, comma"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"has ""quote"""`) {
		t.Fatalf("quote not escaped: %s", out)
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"301", "-1.5", "3.1e4", "19.33%", "+2"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "gzip", "1-unit", "a1", "1a", "1-2"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 6. Miss rates")
	c.Add("FLUSH", 0.24)
	c.Add("8-unit", 0.14)
	c.Add("FIFO", 0.12)
	out := c.String()
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("missing title:\n%s", out)
	}
	// FLUSH bar must be the longest.
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	flushLen := strings.Count(lines[0], "#")
	fifoLen := strings.Count(lines[2], "#")
	if flushLen <= fifoLen {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
	if flushLen != 50 {
		t.Fatalf("max bar should fill width, got %d", flushLen)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("empty")
	c.Add("a", 0)
	c.Add("b", 0)
	out := c.String()
	if strings.Count(out, "#") != 0 {
		t.Fatalf("zero values should render empty bars:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Figure 7. Miss rate under pressure", "policy", "2", "4", "6", "8", "10")
	if err := s.Set("FLUSH", []float64{0.1, 0.2, 0.3, 0.4, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("FIFO", []float64{0.05, 0.1, 0.15, 0.2, 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("FLUSH", []float64{0.1, 0.2, 0.3, 0.4, 0.6}); err != nil {
		t.Fatal(err) // overwrite allowed, no duplicate order entry
	}
	if len(s.Order) != 2 {
		t.Fatalf("Order = %v", s.Order)
	}
	if err := s.Set("bad", []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	out := s.String()
	if !strings.Contains(out, "FLUSH") || !strings.Contains(out, "0.6") {
		t.Fatalf("series render missing data:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Error("degenerate sparklines should be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", s)
	}
	// Constant series renders at the floor.
	s = Sparkline([]float64{5, 5, 5, 5}, 4)
	if s != "▁▁▁▁" {
		t.Fatalf("constant = %q", s)
	}
	// Resampling: more values than width.
	s = Sparkline([]float64{0, 0, 0, 0, 10, 10, 10, 10}, 2)
	if []rune(s)[0] == []rune(s)[1] {
		t.Fatalf("resampled = %q, halves should differ", s)
	}
	// Width larger than series clamps.
	if got := Sparkline([]float64{1, 2}, 10); len([]rune(got)) != 2 {
		t.Fatalf("clamped width = %q", got)
	}
}
