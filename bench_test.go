package dynocache

// One testing.B benchmark per paper table/figure, plus ablation benches
// for the design choices called out in DESIGN.md. Each figure bench
// regenerates its experiment end to end on the quick-scale suite; run the
// cmd/dynocache-experiments binary for the full-scale reproduction.

import (
	"bytes"
	"sync"
	"testing"

	"dynocache/internal/core"
	"dynocache/internal/dbt"
	"dynocache/internal/experiments"
	"dynocache/internal/program"
	"dynocache/internal/sim"
	"dynocache/internal/stats"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

// suiteForBench builds one shared quick-scale suite (workload synthesis
// and sweeps are memoized inside it, so figure benches measure their own
// analysis plus any sweeps they are first to need).
func suiteForBench(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.QuickConfig()
		cfg.Pressures = []int{2, 4, 6, 8, 10}
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			panic(err)
		}
		benchSuite = s
	})
	return benchSuite
}

func BenchmarkTable1(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if got := len(s.Table1().Rows); got != 20 {
			b.Fatalf("rows = %d", got)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if got := len(s.Fig4().Rows); got != 20 {
			b.Fatalf("rows = %d", got)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEq3(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Eq3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEq4(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Eq4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig14(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec53(b *testing.B) {
	s := suiteForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Sec53(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core mechanisms ---

// benchTrace synthesizes one medium workload for cache micro-benches.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	p, err := workload.ByName("vortex")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := p.Scaled(0.25).Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchReplay(b *testing.B, policy core.Policy) {
	tr := benchTrace(b)
	b.ResetTimer()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(tr, policy, 4, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Stats.Accesses
	}
	b.ReportMetric(float64(accesses)/float64(b.N), "accesses/op")
}

func BenchmarkCacheFlush(b *testing.B)  { benchReplay(b, Flush()) }
func BenchmarkCache8Unit(b *testing.B)  { benchReplay(b, MediumGrained(8)) }
func BenchmarkCache64Unit(b *testing.B) { benchReplay(b, MediumGrained(64)) }
func BenchmarkCacheFIFO(b *testing.B)   { benchReplay(b, FineGrained()) }
func BenchmarkCacheLRU(b *testing.B)    { benchReplay(b, LRU()) }

func BenchmarkDBTEndToEnd(b *testing.B) {
	p, err := program.Generate(program.DefaultGenConfig(77))
	if err != nil {
		b.Fatal(err)
	}
	code, err := p.Code()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := dbt.New(dbt.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Load(code, program.CodeBase, p.Entry); err != nil {
			b.Fatal(err)
		}
		if err := d.Run(50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationUnitSweep measures the headline knob: total priced
// overhead across the full granularity sweep on one workload.
func BenchmarkAblationUnitSweep(b *testing.B) {
	tr := benchTrace(b)
	model := PaperOverheadModel()
	policies := GranularitySweep(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var prev float64
		for _, p := range policies {
			res, err := sim.Run(tr, p, 10, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			prev = res.Overhead(model, true).Total()
		}
		_ = prev
	}
}

// BenchmarkAblationLRUFragmentation quantifies §3.3: how many LRU
// evictions are forced purely by fragmentation.
func BenchmarkAblationLRUFragmentation(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	var fragPct float64
	for i := 0; i < b.N; i++ {
		capacity, err := sim.CapacityFor(tr, 6)
		if err != nil {
			b.Fatal(err)
		}
		c, err := core.NewLRU(capacity)
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range tr.Accesses {
			if !c.Access(id) {
				if err := c.Insert(tr.Blocks[id]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if ev := c.Stats().BlocksEvicted; ev > 0 {
			fragPct = 100 * float64(c.FragEvictions) / float64(ev)
		}
	}
	b.ReportMetric(fragPct, "frag-evictions-%")
}

// BenchmarkAblationAdaptive compares the future-work adaptive policy
// against the best static granularity.
func BenchmarkAblationAdaptive(b *testing.B) {
	tr := benchTrace(b)
	model := PaperOverheadModel()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		static, err := sim.Run(tr, MediumGrained(8), 10, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		adaptive, err := sim.Run(tr, Adaptive(), 10, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = adaptive.Overhead(model, true).Total() / static.Overhead(model, true).Total()
	}
	b.ReportMetric(ratio, "adaptive/8unit-overhead")
}

// BenchmarkAblationPreemptiveFlush compares Dynamo-style phase-triggered
// flushing against flush-when-full.
func BenchmarkAblationPreemptiveFlush(b *testing.B) {
	tr := benchTrace(b)
	model := PaperOverheadModel()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		plain, err := sim.Run(tr, Flush(), 6, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pre, err := sim.Run(tr, PreemptiveFlush(), 6, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = pre.Overhead(model, false).Total() / plain.Overhead(model, false).Total()
	}
	b.ReportMetric(ratio, "preemptive/flush-overhead")
}

// BenchmarkAblationPlacement probes the paper's placement future work by
// varying code-layout link locality and measuring how many links end up
// crossing unit boundaries: tighter layout locality keeps links
// intra-unit, which is exactly what a link-aware placement policy buys.
func BenchmarkAblationPlacement(b *testing.B) {
	base, err := workload.ByName("gap")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var loose, tight float64
		for _, loc := range []float64{2, 32} {
			p := base
			p.LinkLocality = loc
			tr, err := p.Synthesize()
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(tr, MediumGrained(8), 2, sim.Options{CensusEvery: 500})
			if err != nil {
				b.Fatal(err)
			}
			if loc == 2 {
				tight = res.InterUnitLinkFraction()
			} else {
				loose = res.InterUnitLinkFraction()
			}
		}
		if i == 0 {
			b.ReportMetric(100*tight, "tight-interlink-%")
			b.ReportMetric(100*loose, "loose-interlink-%")
		}
	}
}

// BenchmarkAblationGenerational compares the generational extension to a
// flat medium-grained cache.
func BenchmarkAblationGenerational(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		flat, err := sim.Run(tr, MediumGrained(8), 6, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		gen, err := sim.Run(tr, Generational(8), 6, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = gen.Stats.MissRate() / flat.Stats.MissRate()
	}
	b.ReportMetric(ratio, "generational/8unit-missrate")
}

// BenchmarkRandSampling measures the deterministic PRNG behind trace
// synthesis.
func BenchmarkRandSampling(b *testing.B) {
	r := stats.NewRand(1, 1)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.LogNormal(244, 0.9)
	}
	_ = acc
}

// TestReplayStreamSteadyAllocs pins the streaming-replay allocation
// profile: decoding the block table must not allocate per field (the
// binary.Read regression that once put replay/stream at ~116k allocs/op),
// the decoder's block map and link-arena chunks must recycle through
// their pools (Stream.ReleaseBlocks) instead of being remade per run,
// and the access path must stay chunk-pooled. What remains is a fixed
// per-run budget — dense replay tables, engine state, the CSR link
// freeze — independent of both the block and the access count, so the
// limit is a constant, not a per-block allowance.
func TestReplayStreamSteadyAllocs(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Scaled(0.3).Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := tr.Write(&enc); err != nil {
		t.Fatal(err)
	}
	raw := enc.Bytes()
	run := func() {
		st, err := trace.NewStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunStream(st, FineGrained(), 2, sim.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the chunk-buffer, block-map, and link-arena pools
	avg := testing.AllocsPerRun(3, run)
	const limit = 64.0 // measured 51 steady-state; headroom, not slack
	if avg > limit {
		t.Errorf("streaming replay allocates %.0f objects/run for a %d-block trace (fixed limit %.0f)",
			avg, tr.NumBlocks(), limit)
	}
	t.Logf("streaming replay: %.0f allocs/run over %d blocks, %d accesses", avg, tr.NumBlocks(), len(tr.Accesses))
}
