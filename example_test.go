package dynocache_test

import (
	"fmt"

	"dynocache"
)

// The basic flow: synthesize a calibrated benchmark, replay it against an
// eviction policy, and read the cache statistics.
func ExampleSimulate() {
	tr, err := dynocache.SynthesizeBenchmark("mcf", 1.0)
	if err != nil {
		panic(err)
	}
	res, err := dynocache.Simulate(tr, dynocache.MediumGrained(8), 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("superblocks: %d\n", tr.NumBlocks())
	fmt.Printf("evicted more than inserted? %v\n",
		res.Stats.BlocksEvicted > res.Stats.InsertedBlocks)
	// Output:
	// superblocks: 158
	// evicted more than inserted? false
}

// Policies are declarative specs; the granularity sweep is the paper's
// x-axis.
func ExampleGranularitySweep() {
	for _, p := range dynocache.GranularitySweep(8) {
		fmt.Println(p)
	}
	// Output:
	// FLUSH
	// 2-unit
	// 4-unit
	// 8-unit
	// FIFO
}

// The overhead model prices cache-management events with the paper's
// measured equations.
func ExampleOverheadModel() {
	m := dynocache.PaperOverheadModel()
	// Equation 3: a miss for a 230-byte superblock costs 19,264
	// instructions.
	fmt.Printf("%.0f\n", m.MissCost(230, 1))
	// Equation 2: evicting 230 bytes costs ~3,692 instructions.
	fmt.Printf("%.0f\n", m.EvictionCost(230, 1))
	// Output:
	// 19264
	// 3692
}

// ParsePolicy turns CLI-style names into policy specs.
func ExampleParsePolicy() {
	for _, name := range []string{"flush", "64-unit", "fifo"} {
		p, err := dynocache.ParsePolicy(name)
		if err != nil {
			panic(err)
		}
		cache, err := dynocache.NewCache(p, 1<<16)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d units\n", cache.Name(), cache.Units())
	}
	// Output:
	// FLUSH: 1 units
	// 64-unit: 64 units
	// FIFO: 0 units
}
