package dynocache

import (
	"strings"
	"testing"

	"dynocache/internal/program"
)

func TestFacadePolicyConstructors(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
	}{
		{Flush(), "FLUSH"},
		{MediumGrained(8), "8-unit"},
		{FineGrained(), "FIFO"},
		{LRU(), "LRU"},
		{Adaptive(), "adaptive"},
		{PreemptiveFlush(), "preemptive"},
		{Generational(8), "generational/8"},
	}
	for _, c := range cases {
		if c.p.String() != c.name {
			t.Errorf("policy name = %q, want %q", c.p.String(), c.name)
		}
		cache, err := NewCache(c.p, 1<<16)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if cache.Capacity() <= 0 {
			t.Errorf("%s: bad capacity", c.name)
		}
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if got := len(Benchmarks()); got != 20 {
		t.Fatalf("Benchmarks() = %d profiles, want 20", got)
	}
	p, err := BenchmarkByName("crafty")
	if err != nil || p.Superblocks != 1488 {
		t.Fatalf("BenchmarkByName(crafty) = %+v, %v", p, err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	tr, err := SynthesizeBenchmark("gzip", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, MediumGrained(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MissRate() <= 0 || res.Stats.MissRate() >= 1 {
		t.Fatalf("implausible miss rate %g", res.Stats.MissRate())
	}
	model := PaperOverheadModel()
	b := res.Overhead(model, true)
	if b.Total() <= 0 {
		t.Fatal("zero overhead")
	}
	if _, err := SynthesizeBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestFacadeSweep(t *testing.T) {
	var traces []*Trace
	for _, name := range []string{"gzip", "mcf"} {
		tr, err := SynthesizeBenchmark(name, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	sw, err := Sweep(traces, GranularitySweep(8), 4, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.UnifiedMissRate(0) <= sw.UnifiedMissRate(len(sw.Policies)-1) {
		t.Fatal("FLUSH should miss more than FIFO")
	}
}

func TestFacadeDBT(t *testing.T) {
	p, err := program.Generate(program.DefaultGenConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDBT(DefaultDBTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(code, program.CodeBase, p.Entry); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if d.Stats().SuperblocksFormed == 0 {
		t.Fatal("DBT formed no superblocks")
	}
}

func TestFacadeReproduceAllTinyScale(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.Scale = 0.02
	cfg.Pressures = []int{2, 10}
	var b strings.Builder
	if err := ReproduceAll(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Section 5.3") {
		t.Fatal("report incomplete")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]string{
		"flush":          "FLUSH",
		"FIFO":           "FIFO",
		"fine":           "FIFO",
		"lru":            "LRU",
		"compacting-lru": "compacting-LRU",
		"adaptive":       "adaptive",
		"preemptive":     "preemptive",
		"8-unit":         "8-unit",
		"1-unit":         "FLUSH",
		"generational/4": "generational/4",
	}
	for in, want := range cases {
		p, err := ParsePolicy(in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if p.String() != want {
			t.Errorf("ParsePolicy(%q) = %s, want %s", in, p, want)
		}
	}
	for _, bad := range []string{"", "x-unit", "0-unit", "generational/x", "random"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) should fail", bad)
		}
	}
}
