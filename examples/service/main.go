// Sharded cache service: the multiprogramming argument of §2.3 taken to
// its production conclusion (ShareJIT): many concurrent clients, one
// bounded translation-cache service. Four tenants replay Table 1
// workloads from their own goroutines against two cache shards; the
// service routes tenants to shards, remaps their superblock IDs into
// disjoint ranges, sends batched envelopes to each shard's owner
// goroutine (shared-nothing: no locks, the owner exclusively holds the
// cache), and keeps a per-tenant counter ledger that must sum exactly
// to the engine-side counters.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"dynocache"
	"dynocache/internal/core"
	"dynocache/internal/service"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
)

func main() {
	names := []string{"gzip", "mcf", "bzip2", "twolf"}
	traces := make([]*trace.Trace, len(names))
	capacity := 0
	for i, n := range names {
		tr, err := dynocache.SynthesizeBenchmark(n, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		c, err := sim.CapacityFor(tr, 2)
		if err != nil {
			log.Fatal(err)
		}
		if c > capacity {
			capacity = c
		}
		traces[i] = tr
	}

	// Two shards for four tenants: pairs of tenants share a cache, the
	// invariant wall (Verify) checks every operation, and backpressure
	// bounds each shard to 8 concurrent batches.
	svc, err := service.New(service.Config{
		Shards:        2,
		Policy:        dynocache.MediumGrained(8),
		ShardCapacity: capacity,
		QueueDepth:    8,
		Verify:        true,
	})
	if err != nil {
		log.Fatal(err)
	}

	tenants := make([]*service.Tenant, len(names))
	for i, n := range names {
		tenants[i], err = svc.Register(n, core.SuperblockID(traces[i].NumBlocks()))
		if err != nil {
			log.Fatal(err)
		}
	}

	// Each tenant drives the miss-driven replay protocol in batches of 64
	// accesses, retrying when its shard is backlogged.
	var wg sync.WaitGroup
	for i := range tenants {
		wg.Add(1)
		go func(ten *service.Tenant, tr *trace.Trace) {
			defer wg.Done()
			regen := func(id core.SuperblockID) (core.Superblock, error) {
				return tr.Blocks[id], nil
			}
			for cur := 0; cur < len(tr.Accesses); cur += 64 {
				end := cur + 64
				if end > len(tr.Accesses) {
					end = len(tr.Accesses)
				}
				for {
					err := ten.ReplayBatch(tr.Accesses[cur:end], regen)
					if err == nil {
						break
					}
					var busy *service.BacklogError
					if !errors.As(err, &busy) {
						log.Fatal(err)
					}
				}
			}
		}(tenants[i], traces[i])
	}
	wg.Wait()

	// Stop the shard owner goroutines; stats and the consistency check
	// below remain readable on the quiesced service.
	svc.Close()

	fmt.Printf("%-8s %6s %10s %8s %10s %10s\n", "tenant", "shard", "accesses", "misses", "evictions", "rejected")
	for _, ten := range tenants {
		st := ten.Stats()
		fmt.Printf("%-8s %6d %10d %8d %10d %10d\n",
			ten.Name(), ten.Shard(), st.Accesses, st.Misses, st.EvictionInvocations, st.Rejected)
	}

	// The double-entry ledger: per-tenant counters must sum exactly to
	// what each shard's cache counted.
	if err := svc.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	agg := svc.AggregateStats()
	fmt.Printf("\naggregate: %d accesses, %d misses, %d evictions — ledger consistent\n",
		agg.Accesses, agg.Misses, agg.EvictionInvocations)
}
