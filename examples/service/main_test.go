package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServiceExampleRuns executes the example end to end so `go test
// ./...` catches drift in the service API the docs demonstrate. A failure
// inside main exits via log.Fatal, which fails the test binary.
func TestServiceExampleRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = f
	defer func() { os.Stdout = orig }()

	main()

	os.Stdout = orig
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"tenant", "gzip", "twolf", "ledger consistent"} {
		if !strings.Contains(string(out), marker) {
			t.Errorf("output missing %q", marker)
		}
	}
}
