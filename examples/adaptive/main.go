// Adaptive granularity: the paper's future work ("a cache management
// strategy that dynamically adjusts the eviction granularity on-the-fly,
// based on the perceived cache pressure"), implemented and demonstrated.
//
// The adaptive cache watches the mix of miss-regeneration cost versus
// eviction/unlink cost over a sliding window and doubles or halves its
// unit count accordingly. This example runs it across the pressure range
// and compares it with every static granularity.
package main

import (
	"fmt"
	"log"

	"dynocache"
	"dynocache/internal/core"
)

func main() {
	tr, err := dynocache.SynthesizeBenchmark("perlbmk", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", tr.Summarize())
	model := dynocache.PaperOverheadModel()

	fmt.Printf("%-10s", "policy")
	pressures := []int{2, 4, 6, 8, 10}
	for _, p := range pressures {
		fmt.Printf(" %9s", fmt.Sprintf("p=%d", p))
	}
	fmt.Println("   (total overhead, millions of instructions)")

	sweep := append(dynocache.GranularitySweep(64), dynocache.Adaptive())
	for _, pol := range sweep {
		fmt.Printf("%-10s", pol)
		for _, pressure := range pressures {
			res, err := dynocache.Simulate(tr, pol, pressure)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.1f", res.Overhead(model, true).Total()/1e6)
		}
		fmt.Println()
	}

	// Peek inside the controller: where does it settle at each pressure?
	fmt.Println("\nadaptive controller settling points:")
	for _, pressure := range pressures {
		capacity := tr.TotalBytes() / pressure
		c, err := core.NewAdaptive(core.AdaptiveConfig{Capacity: capacity})
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range tr.Accesses {
			if !c.Access(id) {
				if err := c.Insert(tr.Blocks[id]); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("  pressure %2d: %3d units after %d adjustments\n",
			pressure, c.CurrentUnits(), c.Adjustments)
	}
}
