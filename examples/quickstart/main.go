// Quickstart: synthesize a benchmark workload, replay it against three
// eviction granularities, and price the cache-management overhead with the
// paper's cost model.
package main

import (
	"fmt"
	"log"

	"dynocache"
)

func main() {
	// 1. Expand the paper's gzip profile (301 hot superblocks, Table 1)
	// into a replayable trace.
	tr, err := dynocache.SynthesizeBenchmark("gzip", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", tr.Summarize())

	// 2. Replay it under three eviction granularities at cache pressure 2
	// (the cache holds half of the code the program needs).
	model := dynocache.PaperOverheadModel()
	policies := []dynocache.Policy{
		dynocache.Flush(),          // coarsest: flush everything
		dynocache.MediumGrained(8), // the paper's medium-grained proposal
		dynocache.FineGrained(),    // finest: evict block by block
	}
	fmt.Printf("%-8s %10s %12s %14s %12s\n", "policy", "missrate", "evictions", "overhead", "time(s)")
	for _, p := range policies {
		res, err := dynocache.Simulate(tr, p, 2)
		if err != nil {
			log.Fatal(err)
		}
		oh := res.Overhead(model, true)
		fmt.Printf("%-8s %10.4f %12d %14.0f %12.5f\n",
			p, res.Stats.MissRate(), res.Stats.EvictionInvocations,
			oh.Total(), model.Seconds(oh.Total()))
	}

	// 3. The same comparison under heavy pressure (cache = maxCache/10)
	// shows the trade-off flip the paper is about: fine-grained eviction
	// stops paying for itself while medium granularity stays robust.
	fmt.Println("\nunder pressure 10:")
	for _, p := range policies {
		res, err := dynocache.Simulate(tr, p, 10)
		if err != nil {
			log.Fatal(err)
		}
		oh := res.Overhead(model, true)
		fmt.Printf("%-8s %10.4f %12d %14.0f %12.5f\n",
			p, res.Stats.MissRate(), res.Stats.EvictionInvocations,
			oh.Total(), model.Seconds(oh.Total()))
	}
}
