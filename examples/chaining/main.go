// Chaining: reproduce Table 2's point on the live translator. A synthetic
// guest program runs under the full DBT twice — once with superblock
// chaining, once without — and the modelled execution times show why
// "removing superblock chaining altogether is not an option" (§5.1).
package main

import (
	"fmt"
	"log"

	"dynocache"
	"dynocache/internal/program"
)

func main() {
	gen := program.DefaultGenConfig(2004)
	gen.PhaseIters = 1500 // run long enough to amortize translation cost
	prog, err := program.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	code, err := prog.Code()
	if err != nil {
		log.Fatal(err)
	}

	run := func(chaining bool) (*dynocache.DBT, float64) {
		cfg := dynocache.DefaultDBTConfig()
		cfg.Chaining = chaining
		d, err := dynocache.NewDBT(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Load(code, program.CodeBase, prog.Entry); err != nil {
			log.Fatal(err)
		}
		if err := d.Run(200_000_000); err != nil {
			log.Fatal(err)
		}
		return d, d.ModeledSeconds()
	}

	on, tOn := run(true)
	off, tOff := run(false)

	fmt.Printf("guest program: %d instructions, %d functions\n\n", len(prog.Insts), len(prog.Funcs))
	fmt.Printf("%-22s %15s %15s\n", "", "chaining on", "chaining off")
	fmt.Printf("%-22s %15d %15d\n", "superblocks formed", on.Stats().SuperblocksFormed, off.Stats().SuperblocksFormed)
	fmt.Printf("%-22s %15d %15d\n", "stubs patched", on.Stats().StubsPatched, off.Stats().StubsPatched)
	fmt.Printf("%-22s %15d %15d\n", "dispatcher traps", on.Stats().Traps, off.Stats().Traps)
	fmt.Printf("%-22s %15d %15d\n", "cache entries", on.Stats().CacheEntries, off.Stats().CacheEntries)
	fmt.Printf("%-22s %15.6f %15.6f\n", "modelled time (s)", tOn, tOff)
	fmt.Printf("\nslowdown from disabling chaining: %.0f%%\n", 100*(tOff-tOn)/tOn)
	fmt.Println("(the paper measured 447%..3357% across SPECint2000 — Table 2)")
}
