// Custom policy: the Cache interface is open — this example implements a
// segmented FIFO ("probation + protected") eviction policy out of public
// pieces and replays a workload against it next to the built-in policies.
//
// New superblocks enter a small probation segment managed fine-grained;
// a block re-entered while on probation is considered proven and is
// re-inserted into the protected segment, which uses the paper's
// medium-grained unit flushes. One-touch-wonder regions thus never
// pollute the protected space.
package main

import (
	"fmt"
	"log"

	"dynocache"
)

// segmentedFIFO implements dynocache.Cache by composing two built-in
// caches.
type segmentedFIFO struct {
	probation dynocache.Cache
	protected dynocache.Cache
	meta      map[dynocache.SuperblockID]dynocache.Superblock
	stats     dynocache.CacheStats
	agg       dynocache.CacheStats
}

func newSegmentedFIFO(capacity int) (*segmentedFIFO, error) {
	prob, err := dynocache.NewCache(dynocache.FineGrained(), capacity/4)
	if err != nil {
		return nil, err
	}
	prot, err := dynocache.NewCache(dynocache.MediumGrained(8), capacity-capacity/4)
	if err != nil {
		return nil, err
	}
	return &segmentedFIFO{
		probation: prob,
		protected: prot,
		meta:      make(map[dynocache.SuperblockID]dynocache.Superblock),
	}, nil
}

func (c *segmentedFIFO) Name() string  { return "segmented-fifo" }
func (c *segmentedFIFO) Capacity() int { return c.probation.Capacity() + c.protected.Capacity() }
func (c *segmentedFIFO) Units() int    { return c.protected.Units() }

func (c *segmentedFIFO) Contains(id dynocache.SuperblockID) bool {
	return c.protected.Contains(id) || c.probation.Contains(id)
}

func (c *segmentedFIFO) Access(id dynocache.SuperblockID) bool {
	c.stats.Accesses++
	if c.protected.Contains(id) {
		c.stats.Hits++
		return true
	}
	if c.probation.Contains(id) {
		c.stats.Hits++
		// Second touch while on probation: promote into the protected
		// segment (the probation copy ages out on its own).
		if sb, ok := c.meta[id]; ok && !c.protected.Contains(id) && sb.Size <= c.protected.Capacity() {
			_ = c.protected.Insert(sb)
		}
		return true
	}
	c.stats.Misses++
	return false
}

func (c *segmentedFIFO) Insert(sb dynocache.Superblock) error {
	c.meta[sb.ID] = sb
	c.stats.InsertedBlocks++
	c.stats.InsertedBytes += uint64(sb.Size)
	if sb.Size > c.probation.Capacity() {
		return c.protected.Insert(sb)
	}
	return c.probation.Insert(sb)
}

func (c *segmentedFIFO) AddLink(from, to dynocache.SuperblockID) error {
	if c.protected.Contains(from) {
		return c.protected.AddLink(from, to)
	}
	return c.probation.AddLink(from, to)
}

func (c *segmentedFIFO) Resident() int {
	return c.probation.Resident() + c.protected.Resident()
}

func (c *segmentedFIFO) ResidentBytes() int {
	return c.probation.ResidentBytes() + c.protected.ResidentBytes()
}

func (c *segmentedFIFO) LinkCensus() (intra, inter int) {
	i1, e1 := c.probation.LinkCensus()
	i2, e2 := c.protected.LinkCensus()
	return i1 + i2, e1 + e2
}

func (c *segmentedFIFO) BackPtrTableBytes() int {
	return c.probation.BackPtrTableBytes() + c.protected.BackPtrTableBytes()
}

func (c *segmentedFIFO) Flush() {
	c.probation.Flush()
	c.protected.Flush()
}

func (c *segmentedFIFO) Stats() *dynocache.CacheStats {
	// Access-level counters are ours; structural counters come from the
	// segments.
	p, q := c.probation.Stats(), c.protected.Stats()
	c.agg = c.stats
	c.agg.EvictionInvocations = p.EvictionInvocations + q.EvictionInvocations
	c.agg.BlocksEvicted = p.BlocksEvicted + q.BlocksEvicted
	c.agg.BytesEvicted = p.BytesEvicted + q.BytesEvicted
	c.agg.UnlinkEvents = p.UnlinkEvents + q.UnlinkEvents
	c.agg.InterUnitLinksRemoved = p.InterUnitLinksRemoved + q.InterUnitLinksRemoved
	return &c.agg
}

// replay drives any Cache over a trace by hand (what sim.Run does for the
// built-in policies).
func replay(tr *dynocache.Trace, c dynocache.Cache) error {
	for _, id := range tr.Accesses {
		if !c.Access(id) {
			if err := c.Insert(tr.Blocks[id]); err != nil {
				return err
			}
		}
	}
	return nil
}

func main() {
	tr, err := dynocache.SynthesizeBenchmark("vortex", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", tr.Summarize())

	// Size everything like the simulator would at pressure 4.
	capacity := tr.TotalBytes() / 4

	custom, err := newSegmentedFIFO(capacity)
	if err != nil {
		log.Fatal(err)
	}
	if err := replay(tr, custom); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %10s %12s\n", "policy", "missrate", "evictions")
	for _, p := range []dynocache.Policy{dynocache.Flush(), dynocache.MediumGrained(8), dynocache.FineGrained()} {
		builtin, err := dynocache.NewCache(p, capacity)
		if err != nil {
			log.Fatal(err)
		}
		if err := replay(tr, builtin); err != nil {
			log.Fatal(err)
		}
		s := builtin.Stats()
		fmt.Printf("%-16s %10.4f %12d\n", builtin.Name(), s.MissRate(), s.EvictionInvocations)
	}
	s := custom.Stats()
	fmt.Printf("%-16s %10.4f %12d   <- your policy\n", custom.Name(), s.MissRate(), s.EvictionInvocations)
}
