// Multiprogramming: the paper's introduction argues code caches must be
// bounded partly because "users tend to execute several programs at once".
// This example puts four benchmarks on one shared code cache with
// round-robin context switches and shows (a) how much sharing costs versus
// private caches of the same size, and (b) that the granularity ranking —
// medium units win — survives multiprogramming.
package main

import (
	"fmt"
	"log"

	"dynocache"
	"dynocache/internal/report"
	"dynocache/internal/sim"
	"dynocache/internal/workload"
)

func main() {
	names := []string{"gzip", "vpr", "crafty", "twolf"}
	merged, err := workload.Multiprogram(0.5, 2000, names...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared workload: %s\n", merged.Summarize())

	// Equal hardware budget: the shared cache gets what one average
	// program would get at pressure 2; the solo baseline gives each
	// program a private cache of the same size.
	capacity := merged.TotalBytes() / (2 * len(names))
	fmt.Printf("cache capacity: %d bytes (one average program's pressure-2 share)\n\n", capacity)
	opts := dynocache.SimOptions{Capacity: capacity, OccupancyEvery: len(merged.Accesses) / 400}

	model := dynocache.PaperOverheadModel()
	fmt.Printf("%-10s %10s %14s\n", "policy", "missrate", "overhead/FLUSH")
	var flush float64
	for _, p := range dynocache.GranularitySweep(64) {
		res, err := sim.Run(merged, p, 1, opts)
		if err != nil {
			log.Fatal(err)
		}
		total := res.Overhead(model, true).Total()
		if flush == 0 {
			flush = total
		}
		fmt.Printf("%-10s %10.4f %14.3f\n", p, res.Stats.MissRate(), total/flush)
	}

	// Solo baseline on private caches of the same capacity.
	var misses, accesses uint64
	for _, name := range names {
		tr, err := dynocache.SynthesizeBenchmark(name, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(tr, dynocache.MediumGrained(8), 1, dynocache.SimOptions{Capacity: capacity})
		if err != nil {
			log.Fatal(err)
		}
		misses += res.Stats.Misses
		accesses += res.Stats.Accesses
	}
	solo := float64(misses) / float64(accesses)

	shared, err := sim.Run(merged, dynocache.MediumGrained(8), 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-unit miss rate, private caches: %.4f\n", solo)
	fmt.Printf("8-unit miss rate, shared cache:   %.4f\n", shared.Stats.MissRate())
	fmt.Printf("multiprogramming interference:    %.1fx more misses\n",
		shared.Stats.MissRate()/solo)

	// Occupancy over time: each dip is a context switch evicting the
	// previous program's working set.
	bytes := make([]float64, len(shared.Occupancy))
	for i, o := range shared.Occupancy {
		bytes[i] = float64(o.ResidentBytes)
	}
	fmt.Printf("\nshared-cache occupancy timeline:\n%s\n", report.Sparkline(bytes, 80))
}
