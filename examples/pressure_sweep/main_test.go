package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPressureSweepRuns executes the example end to end so `go test ./...`
// catches API drift in the sweep helpers it demonstrates. A failure inside
// main exits via log.Fatal, which fails the test binary.
func TestPressureSweepRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = f
	defer func() { os.Stdout = orig }()

	main()

	os.Stdout = orig
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"workload:", "relative overhead vs FLUSH", "p=10", "FLUSH", "FIFO"} {
		if !strings.Contains(string(out), marker) {
			t.Errorf("output missing %q", marker)
		}
	}
	// Every matrix cell must have rendered as a finite ratio; a NaN would
	// print as "NaN" and break the row format.
	if strings.Contains(string(out), "NaN") {
		t.Error("overhead matrix contains NaN")
	}
}
