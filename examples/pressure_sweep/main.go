// Pressure sweep: the paper's central experiment on one interactive
// workload. Interactive applications generate code faster than anything
// else (the paper's word touches 18k superblocks / 34 MB of code), so
// their code caches live under permanent pressure. This example sweeps
// eviction granularity against cache pressure and prints the relative
// overhead matrix — the data behind Figures 11 and 15.
package main

import (
	"fmt"
	"log"

	"dynocache"
)

func main() {
	// A 20%-scale word workload keeps this example under a few seconds.
	tr, err := dynocache.SynthesizeBenchmark("word", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", tr.Summarize())

	model := dynocache.PaperOverheadModel()
	policies := dynocache.GranularitySweep(64)
	pressures := []int{2, 4, 6, 8, 10}

	fmt.Printf("relative overhead vs FLUSH (misses + evictions + link maintenance)\n")
	fmt.Printf("%-10s", "policy")
	for _, n := range pressures {
		fmt.Printf(" %8s", fmt.Sprintf("p=%d", n))
	}
	fmt.Println()

	table := make([][]float64, len(policies))
	for pi := range table {
		table[pi] = make([]float64, len(pressures))
	}
	for ki, pressure := range pressures {
		var flush float64
		for pi, pol := range policies {
			res, err := dynocache.Simulate(tr, pol, pressure)
			if err != nil {
				log.Fatal(err)
			}
			total := res.Overhead(model, true).Total()
			if pi == 0 {
				flush = total
			}
			table[pi][ki] = total / flush
		}
	}
	for pi, pol := range policies {
		fmt.Printf("%-10s", pol)
		for ki := range pressures {
			fmt.Printf(" %8.3f", table[pi][ki])
		}
		fmt.Println()
	}

	fmt.Println("\nreading the matrix: medium-grained rows stay lowest as pressure")
	fmt.Println("rises; the FIFO row climbs back toward (and past) FLUSH — the")
	fmt.Println("paper's case for medium-grained eviction.")
}
