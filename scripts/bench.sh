#!/usr/bin/env bash
# Run the pinned benchmark suite and write BENCH_report.json.
#
#   scripts/bench.sh                 # full-scale replay trace (CI, reports)
#   BENCH_SCALE=0.05 scripts/bench.sh  # quick smoke
#
# Environment:
#   BENCH_SCALE     replay trace scale (default 1.0)
#   BENCH_PRESSURE  cache pressure factor (default 2)
#   BENCH_TIME      measurement window per benchmark (default 1s)
#   BENCH_OUT       report path (default BENCH_report.json)
#   BENCH_POLICY    eviction policy for the replay rows (default fifo)
#   BENCH_CPU       GOMAXPROCS ladder for the service scaling sweep
#                   (default auto = powers of two up to NumCPU; '' skips)
#   BENCH_SCALING_FLOOR  fail unless scaling efficiency reaches this floor
#                   (only applied when the sweep spans more than one proc)
#   BENCH_GATE      committed report to gate against: the run fails if
#                   replay_speedup_vs_legacy (or the scaling efficiency,
#                   when both reports swept the same proc ladder) drops
#                   >15% below it
#   BENCH_BASELINE  commit to measure an out-of-tree replay baseline at
#                   (checked out into a throwaway worktree; sim.Run there
#                   is timed on the same trace and embedded in the report)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-1.0}"
PRESSURE="${BENCH_PRESSURE:-2}"
BENCHTIME="${BENCH_TIME:-1s}"
OUT="${BENCH_OUT:-BENCH_report.json}"
POLICY="${BENCH_POLICY:-fifo}"
CPU="${BENCH_CPU:-auto}"
SCALING_FLOOR="${BENCH_SCALING_FLOOR:-0}"
GATE="${BENCH_GATE:-}"
BASELINE="${BENCH_BASELINE:-}"

GATEFLAGS=()
if [[ -n "$GATE" ]]; then
  GATEFLAGS=(-gate "$GATE")
fi

BASEFLAGS=()
if [[ -n "$BASELINE" ]]; then
  WT="$(mktemp -d)/baseline"
  git worktree add --quiet "$WT" "$BASELINE"
  trap 'git worktree remove --force "$WT" >/dev/null 2>&1 || true' EXIT
  mkdir -p "$WT/cmd/baseline-bench"
  cp scripts/baseline_bench.go.txt "$WT/cmd/baseline-bench/main.go"
  (cd "$WT" && go build -o /tmp/dynocache-baseline ./cmd/baseline-bench)
  read -r NS ALLOCS < <(/tmp/dynocache-baseline -bench word -scale "$SCALE" -pressure "$PRESSURE" -benchtime "$BENCHTIME")
  BASEFLAGS=(-baseline-commit "$(git rev-parse --short "$BASELINE")" -baseline-ns "$NS" -baseline-allocs "$ALLOCS")
fi

go build -o /tmp/dynocache-bench ./cmd/dynocache-bench
/tmp/dynocache-bench -scale "$SCALE" -pressure "$PRESSURE" -benchtime "$BENCHTIME" \
  -policy "$POLICY" -cpu "$CPU" -scaling-floor "$SCALING_FLOOR" \
  -o "$OUT" "${BASEFLAGS[@]}" "${GATEFLAGS[@]}"
echo "wrote $OUT"
