#!/bin/sh
# Fails if statement coverage of a guarded package drops below its recorded
# baseline. Baselines are the measured coverage at the time the guard was
# added, rounded down half a point for timing-independent headroom; raise
# them when new tests land, never lower them to make a regression pass.
set -eu

fail=0

check() {
    pkg=$1
    floor=$2
    out=$(go test -cover "$pkg")
    pct=$(printf '%s\n' "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "error: no coverage figure in output for $pkg:"
        printf '%s\n' "$out"
        fail=1
        return
    fi
    echo "$pkg: $pct% (floor $floor%)"
    if ! awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p + 0 >= f + 0) ? 0 : 1 }'; then
        echo "error: $pkg coverage $pct% fell below the $floor% floor"
        fail=1
    fi
}

check ./internal/core 94.5
# sim re-baselined when the multi-configuration sweep kernel and interval
# sampling landed: the new files' remaining gaps are cgroup memory-budget
# detection and streamed-replay error plumbing, both exercised only in
# environments the test runner cannot fake.
check ./internal/sim 96.2
check ./internal/check 76.5

exit $fail
