// Package dynocache reproduces "Exploring Code Cache Eviction
// Granularities in Dynamic Optimization Systems" (Hazelwood & Smith,
// CGO 2004) as a reusable Go library.
//
// The package is a facade over the implementation:
//
//   - a software code cache with pluggable eviction granularity (FLUSH,
//     medium-grained n-unit FIFO, fine-grained FIFO, plus LRU, adaptive,
//     preemptive-flush, and generational extensions), with full superblock
//     chaining and back-pointer bookkeeping;
//   - calibrated workload synthesis for the paper's 20 benchmarks
//     (Table 1) and a trace-driven simulator;
//   - the analytical overhead model of Equations 2-4 and the execution
//     time estimator of Section 5.3;
//   - a complete dynamic binary translator for the DRISC guest ISA that
//     executes translated superblocks out of the managed cache;
//   - experiment runners regenerating every table and figure.
//
// Quick start:
//
//	tr, _ := dynocache.SynthesizeBenchmark("gzip", 1.0)
//	res, _ := dynocache.Simulate(tr, dynocache.MediumGrained(8), 2)
//	fmt.Printf("miss rate: %.3f\n", res.Stats.MissRate())
package dynocache

import (
	"fmt"
	"io"
	"strings"

	"dynocache/internal/core"
	"dynocache/internal/dbt"
	"dynocache/internal/experiments"
	"dynocache/internal/overhead"
	"dynocache/internal/sim"
	"dynocache/internal/trace"
	"dynocache/internal/workload"
)

// Re-exported core types: the code cache and its building blocks.
type (
	// Cache is the common interface of every eviction policy.
	Cache = core.Cache
	// Superblock describes one translated region presented to the cache.
	Superblock = core.Superblock
	// SuperblockID identifies a superblock across eviction and
	// regeneration.
	SuperblockID = core.SuperblockID
	// CacheStats carries the event counters that the overhead model
	// prices.
	CacheStats = core.Stats
	// Policy is a declarative eviction-policy specification.
	Policy = core.Policy

	// Trace is a replayable code-cache workload (the analogue of the
	// paper's saved DynamoRIO logs).
	Trace = trace.Trace
	// BenchmarkProfile is a calibrated statistical description of one
	// Table 1 benchmark.
	BenchmarkProfile = workload.Profile

	// SimResult is the outcome of replaying one trace against one policy.
	SimResult = sim.Result
	// SimOptions tunes a simulation run.
	SimOptions = sim.Options
	// SweepResult indexes simulation results by policy and benchmark.
	SweepResult = sim.SweepResult

	// OverheadModel prices cache-management events (Equations 2-4).
	OverheadModel = overhead.Model
	// OverheadBreakdown decomposes a run's overhead in instructions.
	OverheadBreakdown = overhead.Breakdown

	// DBT is the dynamic binary translator over the DRISC guest ISA.
	DBT = dbt.DBT
	// DBTConfig parameterizes a translator instance.
	DBTConfig = dbt.Config

	// ExperimentSuite regenerates the paper's tables and figures.
	ExperimentSuite = experiments.Suite
	// ExperimentConfig scales and parameterizes the suite.
	ExperimentConfig = experiments.Config
)

// Flush returns the coarsest policy: flush the whole cache when it fills.
func Flush() Policy { return Policy{Kind: core.PolicyFlush} }

// MediumGrained returns the paper's proposal: the cache is split into n
// equal units flushed in circular FIFO order (n >= 2).
func MediumGrained(n int) Policy { return Policy{Kind: core.PolicyUnits, Units: n} }

// FineGrained returns the finest policy: evict just enough of the oldest
// superblocks to fit each insertion.
func FineGrained() Policy { return Policy{Kind: core.PolicyFine} }

// LRU returns the recency-based policy used for the fragmentation ablation
// (§3.3).
func LRU() Policy { return Policy{Kind: core.PolicyLRU} }

// Adaptive returns the pressure-adaptive granularity policy (the paper's
// future work).
func Adaptive() Policy { return Policy{Kind: core.PolicyAdaptive} }

// PreemptiveFlush returns Dynamo's phase-detecting flush policy.
func PreemptiveFlush() Policy { return Policy{Kind: core.PolicyPreemptive} }

// Generational returns a two-generation cache with an n-unit tenured side
// (after Hazelwood & Smith's MICRO 2003 generational scheme).
func Generational(n int) Policy { return Policy{Kind: core.PolicyGenerational, Units: n} }

// GranularitySweep returns the paper's x-axis: FLUSH, 2..maxUnits units in
// powers of two, then fine-grained FIFO.
func GranularitySweep(maxUnits int) []Policy { return core.GranularitySweep(maxUnits) }

// NewCache instantiates a policy over a cache of the given capacity.
func NewCache(p Policy, capacity int) (Cache, error) { return p.New(capacity) }

// ParsePolicy parses a policy display name: "flush", "fifo" (or "fine"),
// "lru", "compacting-lru", "adaptive", "preemptive", "N-unit" (e.g.
// "8-unit"), or "generational/N".
func ParsePolicy(s string) (Policy, error) {
	p, err := core.ParsePolicy(s)
	if err != nil {
		return Policy{}, fmt.Errorf("dynocache: %s", strings.TrimPrefix(err.Error(), "core: "))
	}
	return p, nil
}

// Benchmarks returns the paper's 20 calibrated benchmark profiles
// (Table 1).
func Benchmarks() []BenchmarkProfile { return workload.Table1() }

// BenchmarkByName returns one Table 1 profile.
func BenchmarkByName(name string) (BenchmarkProfile, error) { return workload.ByName(name) }

// SynthesizeBenchmark expands a named benchmark into a trace at the given
// scale (1.0 reproduces the paper's superblock counts exactly).
func SynthesizeBenchmark(name string, scale float64) (*Trace, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return p.Scaled(scale).Synthesize()
}

// Simulate replays a trace against a policy at the given cache pressure
// factor (capacity = maxCache/pressure, §4.2).
func Simulate(tr *Trace, p Policy, pressure int) (*SimResult, error) {
	return sim.Run(tr, p, pressure, sim.Options{CensusEvery: 2000})
}

// SimulateWithOptions is Simulate with explicit options.
func SimulateWithOptions(tr *Trace, p Policy, pressure int, opts SimOptions) (*SimResult, error) {
	return sim.Run(tr, p, pressure, opts)
}

// Sweep replays every trace against every policy at one pressure factor,
// in parallel.
func Sweep(traces []*Trace, policies []Policy, pressure int, opts SimOptions) (*SweepResult, error) {
	return sim.Sweep(traces, policies, pressure, opts)
}

// PaperOverheadModel returns the cost model with the paper's published
// coefficients (Equations 2-4, 2.4 GHz Xeon).
func PaperOverheadModel() OverheadModel { return overhead.Paper() }

// NewDBT creates a dynamic binary translator with the given configuration.
func NewDBT(cfg DBTConfig) (*DBT, error) { return dbt.New(cfg) }

// DefaultDBTConfig returns a translator configuration suitable for
// programs generated by the synthetic program generator.
func DefaultDBTConfig() DBTConfig { return dbt.DefaultConfig() }

// NewExperimentSuite synthesizes the paper's workloads and prepares the
// experiment runners.
func NewExperimentSuite(cfg ExperimentConfig) (*ExperimentSuite, error) {
	return experiments.NewSuite(cfg)
}

// FullExperimentConfig reproduces the evaluation at full Table 1 scale
// (about a CPU-minute for all figures).
func FullExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig runs the same experiments on 5%-scale workloads.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// ReproduceAll regenerates every table and figure, writing rendered
// artifacts to w.
func ReproduceAll(cfg ExperimentConfig, w io.Writer) error {
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	return s.RunAll(w)
}
