module dynocache

go 1.22
